//! File managers: random page I/O with accounting.
//!
//! The buffer manager sits on top of a [`FileManager`]. Two implementations
//! are provided: [`MemFileManager`] (the default for tests and benchmarks —
//! all I/O is counted in an [`IoStats`] and costed through a
//! [`rewind_common::MediaModel`], so media behaviour is modeled rather than
//! endured) and [`DiskFileManager`] (real files, for durability-oriented
//! integration tests).
//!
//! # Media hardening: checksum + torn-write trailer
//!
//! Both implementations stamp every outgoing page image twice — first the
//! torn-write trailer (the low 32 bits of the pageLSN mirrored into the
//! page's last 4 bytes), then the CRC-32C checksum covering the whole image
//! including that trailer — and verify the checksum on every incoming read.
//! A mismatch is classified by the trailer (see [`Page::verify_checksum`]):
//! trailer disagreeing with the header pageLSN means a torn multi-sector
//! write ([`rewind_common::CorruptionKind::TornPage`]); a consistent trailer
//! means whole-image damage
//! ([`rewind_common::CorruptionKind::PageChecksum`]). Either way the read
//! fails with a typed error and the detection is counted in
//! [`IoStats::add_corruption_detected`] — the buffer pool above decides
//! whether to salvage the page from its per-page log chain. For
//! deterministic fault injection against either backend, wrap it in
//! [`crate::FaultInjector`].

use crate::io::{contiguous_runs, contiguous_runs_by, IoBackend};
use crate::page::{Page, PAGE_SIZE};
use parking_lot::RwLock;
use rewind_common::{Error, IoStats, PageId, Result};
use std::fs::{File, OpenOptions};
use std::os::unix::fs::FileExt;
use std::path::Path;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Random page I/O against a database file.
pub trait FileManager: Send + Sync {
    /// Read page `pid`. Reading a page that was never written returns an
    /// all-zero page. Counted as one random page read.
    fn read_page(&self, pid: PageId) -> Result<Page>;

    /// Read page `pid` as part of a large sequential pass (backup, restore).
    /// Counted as sequential bytes, not a random I/O.
    fn read_page_seq(&self, pid: PageId) -> Result<Page>;

    /// Write page `pid`. Counted as one random page write.
    fn write_page(&self, pid: PageId, page: &Page) -> Result<()>;

    /// Write page `pid` as part of a large sequential pass (restore).
    fn write_page_seq(&self, pid: PageId, page: &Page) -> Result<()>;

    /// Number of pages the file currently holds (high-water mark).
    fn page_count(&self) -> u64;

    /// Extend the file to hold at least `count` pages of zeroes.
    fn grow_to(&self, count: u64) -> Result<()>;

    /// Durably flush outstanding writes.
    fn sync(&self) -> Result<()>;

    /// The I/O accounting shared by this file.
    fn io_stats(&self) -> &Arc<IoStats>;
}

/// An in-memory "file": a vector of page images.
///
/// This is the primary backend for benchmarks: it is fast and deterministic,
/// and all media behaviour is modeled through the attached [`IoStats`].
pub struct MemFileManager {
    pages: RwLock<Vec<Option<Box<[u8; PAGE_SIZE]>>>>,
    stats: Arc<IoStats>,
    /// Endured (not just modeled) per-device-op latency in microseconds —
    /// the page-side analogue of `LogConfig::flush_delay_us`. Zero (the
    /// default) sleeps nowhere. When set, each random device op — one
    /// scalar `read_page`/`write_page`, or one *contiguous run* of a
    /// vectored batch — stalls exactly once, which is what makes batching
    /// visible in wall-clock benches without touching any counter.
    device_delay_us: AtomicU64,
}

impl MemFileManager {
    /// An empty in-memory file with fresh I/O counters.
    pub fn new() -> Self {
        Self::with_stats(Arc::new(IoStats::new()))
    }

    /// An empty in-memory file sharing the given counters.
    pub fn with_stats(stats: Arc<IoStats>) -> Self {
        MemFileManager {
            pages: RwLock::new(Vec::new()),
            stats,
            device_delay_us: AtomicU64::new(0),
        }
    }

    /// Set the endured per-device-op latency (see the field docs). Benches
    /// use this to make the one-stall-per-batch model measurable.
    pub fn set_device_delay_us(&self, us: u64) {
        self.device_delay_us.store(us, Ordering::Relaxed);
    }

    /// One device round trip: sleep the configured delay, if any.
    fn device_stall(&self) {
        let us = self.device_delay_us.load(Ordering::Relaxed);
        if us > 0 {
            std::thread::sleep(std::time::Duration::from_micros(us));
        }
    }

    /// The one accounting funnel for reads: random reads count one page
    /// read, sequential reads count page-sized sequential bytes; both then
    /// share `read_impl`. Every trait entry point (scalar and vectored)
    /// routes through here.
    fn read_counted(&self, pid: PageId, seq: bool) -> Result<Page> {
        if seq {
            self.stats.add_seq_data_bytes(PAGE_SIZE as u64);
        } else {
            self.stats.add_page_reads(1);
        }
        self.read_impl(pid)
    }

    /// Write-side accounting funnel, mirror of [`MemFileManager::read_counted`].
    fn write_counted(&self, pid: PageId, page: &Page, seq: bool) -> Result<()> {
        if seq {
            self.stats.add_seq_data_bytes(PAGE_SIZE as u64);
        } else {
            self.stats.add_page_writes(1);
        }
        self.write_impl(pid, page)
    }

    fn read_impl(&self, pid: PageId) -> Result<Page> {
        if !pid.is_valid() {
            return Err(Error::InvalidPage(pid));
        }
        let pages = self.pages.read();
        let page = match pages.get(pid.0 as usize) {
            Some(Some(img)) => {
                let p = Page::from_image(&img[..])?;
                if let Err(e) = p.verify_checksum() {
                    self.stats.add_corruption_detected();
                    return Err(e);
                }
                p
            }
            _ => Page::zeroed(),
        };
        Ok(page)
    }

    fn write_impl(&self, pid: PageId, page: &Page) -> Result<()> {
        if !pid.is_valid() {
            return Err(Error::InvalidPage(pid));
        }
        let mut stamped = page.clone();
        stamped.stamp_trailer();
        stamped.stamp_checksum();
        let mut pages = self.pages.write();
        let idx = pid.0 as usize;
        if pages.len() <= idx {
            pages.resize_with(idx + 1, || None);
        }
        pages[idx] = Some(Box::new(*stamped.image()));
        Ok(())
    }

    /// Deep-copy the entire file (used by backup to capture an image).
    pub fn clone_contents(&self) -> Vec<Option<Box<[u8; PAGE_SIZE]>>> {
        self.pages.read().clone()
    }

    /// Fault-injection hook: the raw stored image of `pid`, if one was ever
    /// written. Bypasses checksum verification and all accounting.
    pub fn raw_image(&self, pid: PageId) -> Option<Box<[u8; PAGE_SIZE]>> {
        self.pages.read().get(pid.0 as usize).cloned().flatten()
    }

    /// Fault-injection hook: overwrite the raw stored image of `pid` without
    /// re-stamping trailer or checksum — this is how [`crate::FaultInjector`]
    /// plants damaged images "at rest".
    pub fn store_raw(&self, pid: PageId, img: Box<[u8; PAGE_SIZE]>) {
        let mut pages = self.pages.write();
        let idx = pid.0 as usize;
        if pages.len() <= idx {
            pages.resize_with(idx + 1, || None);
        }
        pages[idx] = Some(img);
    }

    /// Replace the entire contents (used by restore).
    pub fn replace_contents(&self, contents: Vec<Option<Box<[u8; PAGE_SIZE]>>>) {
        *self.pages.write() = contents;
    }
}

impl Default for MemFileManager {
    fn default() -> Self {
        Self::new()
    }
}

impl FileManager for MemFileManager {
    fn read_page(&self, pid: PageId) -> Result<Page> {
        self.device_stall();
        self.read_counted(pid, false)
    }

    fn read_page_seq(&self, pid: PageId) -> Result<Page> {
        // Sequential passes model bandwidth, not seeks: no per-op stall.
        self.read_counted(pid, true)
    }

    fn write_page(&self, pid: PageId, page: &Page) -> Result<()> {
        self.device_stall();
        self.write_counted(pid, page, false)
    }

    fn write_page_seq(&self, pid: PageId, page: &Page) -> Result<()> {
        self.write_counted(pid, page, true)
    }

    fn page_count(&self) -> u64 {
        self.pages.read().len() as u64
    }

    fn grow_to(&self, count: u64) -> Result<()> {
        let mut pages = self.pages.write();
        if pages.len() < count as usize {
            pages.resize_with(count as usize, || None);
        }
        Ok(())
    }

    fn sync(&self) -> Result<()> {
        Ok(())
    }

    fn io_stats(&self) -> &Arc<IoStats> {
        &self.stats
    }
}

impl IoBackend for MemFileManager {
    fn read_pages(&self, pids: &[PageId]) -> Vec<Result<Page>> {
        let mut out = Vec::with_capacity(pids.len());
        for run in contiguous_runs(pids) {
            // One device op per contiguous run: one vectored-op count, one
            // modeled stall — then per-page accounting exactly as scalar.
            self.stats.add_vectored_read_ops(1);
            self.device_stall();
            for &pid in run {
                out.push(self.read_counted(pid, false));
            }
        }
        out
    }

    fn write_pages(&self, batch: &[(PageId, Page)]) -> Vec<Result<()>> {
        let mut out = Vec::with_capacity(batch.len());
        for run in contiguous_runs_by(batch, |(pid, _)| *pid) {
            self.stats.add_batched_write_ops(1);
            self.device_stall();
            for (pid, page) in run {
                out.push(self.write_counted(*pid, page, false));
            }
        }
        out
    }
}

/// A real on-disk database file.
pub struct DiskFileManager {
    file: File,
    page_count: AtomicU64,
    stats: Arc<IoStats>,
}

impl DiskFileManager {
    /// Open (or create) the database file at `path`.
    pub fn open(path: &Path) -> Result<Self> {
        let file = OpenOptions::new()
            .read(true)
            .write(true)
            .create(true)
            .truncate(false)
            .open(path)?;
        let len = file.metadata()?.len();
        Ok(DiskFileManager {
            file,
            page_count: AtomicU64::new(len / PAGE_SIZE as u64),
            stats: Arc::new(IoStats::new()),
        })
    }

    /// Parse one page image and verify its checksum, counting a detection
    /// on mismatch — shared by the scalar and vectored read paths.
    fn parse_verified(&self, buf: &[u8]) -> Result<Page> {
        let p = Page::from_image(buf)?;
        if let Err(e) = p.verify_checksum() {
            self.stats.add_corruption_detected();
            return Err(e);
        }
        Ok(p)
    }

    /// Read page-aligned bytes at `off`, tolerating EOF (the unread tail
    /// stays zeroed, matching never-written-pages-read-back-zeroed).
    fn read_raw_at(&self, mut buf: &mut [u8], mut off: u64) -> Result<()> {
        while !buf.is_empty() {
            match self.file.read_at(buf, off) {
                Ok(0) => break,
                Ok(n) => {
                    buf = &mut buf[n..];
                    off += n as u64;
                }
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
                Err(e) => return Err(e.into()),
            }
        }
        Ok(())
    }

    fn read_impl(&self, pid: PageId) -> Result<Page> {
        if !pid.is_valid() {
            return Err(Error::InvalidPage(pid));
        }
        let mut buf = [0u8; PAGE_SIZE];
        if pid.0 < self.page_count.load(Ordering::Acquire) {
            self.read_raw_at(&mut buf, pid.0 * PAGE_SIZE as u64)?;
        }
        self.parse_verified(&buf)
    }

    fn write_impl(&self, pid: PageId, page: &Page) -> Result<()> {
        if !pid.is_valid() {
            return Err(Error::InvalidPage(pid));
        }
        let mut stamped = page.clone();
        stamped.stamp_trailer();
        stamped.stamp_checksum();
        self.file
            .write_all_at(&stamped.image()[..], pid.0 * PAGE_SIZE as u64)?;
        self.page_count.fetch_max(pid.0 + 1, Ordering::AcqRel);
        Ok(())
    }

    /// Accounting funnel for reads; see `MemFileManager::read_counted`.
    fn read_counted(&self, pid: PageId, seq: bool) -> Result<Page> {
        if seq {
            self.stats.add_seq_data_bytes(PAGE_SIZE as u64);
        } else {
            self.stats.add_page_reads(1);
        }
        self.read_impl(pid)
    }

    /// Accounting funnel for writes; see `MemFileManager::write_counted`.
    fn write_counted(&self, pid: PageId, page: &Page, seq: bool) -> Result<()> {
        if seq {
            self.stats.add_seq_data_bytes(PAGE_SIZE as u64);
        } else {
            self.stats.add_page_writes(1);
        }
        self.write_impl(pid, page)
    }
}

impl FileManager for DiskFileManager {
    fn read_page(&self, pid: PageId) -> Result<Page> {
        self.read_counted(pid, false)
    }

    fn read_page_seq(&self, pid: PageId) -> Result<Page> {
        self.read_counted(pid, true)
    }

    fn write_page(&self, pid: PageId, page: &Page) -> Result<()> {
        self.write_counted(pid, page, false)
    }

    fn write_page_seq(&self, pid: PageId, page: &Page) -> Result<()> {
        self.write_counted(pid, page, true)
    }

    fn page_count(&self) -> u64 {
        self.page_count.load(Ordering::Acquire)
    }

    fn grow_to(&self, count: u64) -> Result<()> {
        let cur = self.page_count.load(Ordering::Acquire);
        if count > cur {
            self.file.set_len(count * PAGE_SIZE as u64)?;
            self.page_count.fetch_max(count, Ordering::AcqRel);
        }
        Ok(())
    }

    fn sync(&self) -> Result<()> {
        self.file.sync_data()?;
        Ok(())
    }

    fn io_stats(&self) -> &Arc<IoStats> {
        &self.stats
    }
}

impl IoBackend for DiskFileManager {
    fn read_pages(&self, pids: &[PageId]) -> Vec<Result<Page>> {
        let mut out = Vec::with_capacity(pids.len());
        for run in contiguous_runs(pids) {
            if run.iter().any(|p| !p.is_valid()) {
                // Invalid ids have no device offset; take the scalar path so
                // each page gets its own typed error.
                for &pid in run {
                    out.push(self.read_counted(pid, false));
                }
                continue;
            }
            self.stats.add_vectored_read_ops(1);
            // One pread for the whole run; the tail past EOF stays zeroed,
            // exactly like a scalar read of a never-written page.
            let mut buf = vec![0u8; run.len() * PAGE_SIZE];
            let bulk = if run[0].0 < self.page_count.load(Ordering::Acquire) {
                self.read_raw_at(&mut buf, run[0].0 * PAGE_SIZE as u64)
            } else {
                Ok(())
            };
            match bulk {
                Ok(()) => {
                    for (i, _) in run.iter().enumerate() {
                        self.stats.add_page_reads(1);
                        out.push(self.parse_verified(&buf[i * PAGE_SIZE..(i + 1) * PAGE_SIZE]));
                    }
                }
                Err(_) => {
                    // The bulk pread failed as a unit; retry page-by-page so
                    // errors (and any salvageable pages) stay per-page.
                    for &pid in run {
                        out.push(self.read_counted(pid, false));
                    }
                }
            }
        }
        out
    }

    fn write_pages(&self, batch: &[(PageId, Page)]) -> Vec<Result<()>> {
        let mut out = Vec::with_capacity(batch.len());
        for run in contiguous_runs_by(batch, |(pid, _)| *pid) {
            let first = run[0].0;
            if !first.is_valid() {
                for (pid, page) in run {
                    out.push(self.write_counted(*pid, page, false));
                }
                continue;
            }
            self.stats.add_batched_write_ops(1);
            let mut buf = vec![0u8; run.len() * PAGE_SIZE];
            for (i, (_, page)) in run.iter().enumerate() {
                let mut stamped = page.clone();
                stamped.stamp_trailer();
                stamped.stamp_checksum();
                buf[i * PAGE_SIZE..(i + 1) * PAGE_SIZE].copy_from_slice(&stamped.image()[..]);
            }
            match self.file.write_all_at(&buf, first.0 * PAGE_SIZE as u64) {
                Ok(()) => {
                    self.page_count
                        .fetch_max(first.0 + run.len() as u64, Ordering::AcqRel);
                    for _ in run {
                        self.stats.add_page_writes(1);
                        out.push(Ok(()));
                    }
                }
                Err(_) => {
                    for (pid, page) in run {
                        out.push(self.write_counted(*pid, page, false));
                    }
                }
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::page::PageType;
    use rewind_common::ObjectId;

    fn roundtrip(fm: &dyn FileManager) {
        let mut p = Page::formatted(PageId(3), ObjectId(7), PageType::Heap);
        p.insert_record(0, b"persisted").unwrap();
        fm.write_page(PageId(3), &p).unwrap();
        let q = fm.read_page(PageId(3)).unwrap();
        assert_eq!(q.record(0).unwrap(), b"persisted");
        assert_eq!(q.page_id(), PageId(3));
        // never-written page reads back zeroed
        let z = fm.read_page(PageId(1)).unwrap();
        assert_eq!(z.page_lsn(), rewind_common::Lsn::NULL);
        assert!(fm.page_count() >= 4);
    }

    #[test]
    fn mem_roundtrip_and_stats() {
        let fm = MemFileManager::new();
        roundtrip(&fm);
        let s = fm.io_stats().snapshot();
        assert_eq!(s.page_writes, 1);
        assert_eq!(s.page_reads, 2);
        fm.read_page_seq(PageId(3)).unwrap();
        let s2 = fm.io_stats().snapshot();
        assert_eq!(s2.page_reads, 2, "seq read must not count as random");
        assert_eq!(s2.seq_data_bytes, PAGE_SIZE as u64);
    }

    #[test]
    fn disk_roundtrip() {
        let dir = std::env::temp_dir().join(format!("rewind-fm-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("test.db");
        let _ = std::fs::remove_file(&path);
        {
            let fm = DiskFileManager::open(&path).unwrap();
            roundtrip(&fm);
            fm.sync().unwrap();
        }
        // reopen and verify persistence
        let fm = DiskFileManager::open(&path).unwrap();
        let q = fm.read_page(PageId(3)).unwrap();
        assert_eq!(q.record(0).unwrap(), b"persisted");
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn grow_and_invalid() {
        let fm = MemFileManager::new();
        fm.grow_to(10).unwrap();
        assert_eq!(fm.page_count(), 10);
        fm.grow_to(5).unwrap();
        assert_eq!(fm.page_count(), 10, "grow_to never shrinks");
        assert!(fm.read_page(PageId::INVALID).is_err());
        assert!(fm.write_page(PageId::INVALID, &Page::zeroed()).is_err());
    }

    #[test]
    fn mem_clone_replace_contents() {
        let fm = MemFileManager::new();
        let p = Page::formatted(PageId(2), ObjectId(1), PageType::Heap);
        fm.write_page(PageId(2), &p).unwrap();
        let snapshot = fm.clone_contents();
        let p2 = Page::formatted(PageId(2), ObjectId(9), PageType::Heap);
        fm.write_page(PageId(2), &p2).unwrap();
        assert_eq!(fm.read_page(PageId(2)).unwrap().object_id(), ObjectId(9));
        fm.replace_contents(snapshot);
        assert_eq!(fm.read_page(PageId(2)).unwrap().object_id(), ObjectId(1));
    }
}
