//! The snapshot side file — our substitute for NTFS sparse files.
//!
//! SQL Server database snapshots store page versions in NTFS sparse files
//! (paper §2.2): a page-addressed store that holds only the pages that have
//! been pushed to it, and answers "do you have page X?" cheaply. Regular
//! snapshots fill it via copy-on-write from the primary; as-of snapshots use
//! it as a cache of pages already unwound to the SplitLSN (§5.3) and as the
//! destination for pages fixed up by background logical undo (§5.2).
//!
//! [`SideFile`] reproduces those semantics with a **sharded** store of
//! immutable [`PageImage`]s: the map is split into pid-hashed shards, each
//! behind its own `RwLock`, so concurrent snapshot readers never block
//! behind a writer (a preparer's `put`, undo's fix-up, or a COW push)
//! landing on an unrelated shard. Within a shard, reads are shared; only a
//! `put` takes the shard exclusively.
//!
//! # Zero-copy hits and the copy-on-write epoch invariant
//!
//! A [`SideFile::get`] is an `Arc` clone — **no page bytes move** on a hit,
//! and the shard lock is held only for the map probe. Stored images are
//! immutable; overwriting an entry (undo's fix-up path) *replaces* the
//! `Arc`, so a reader that fetched the old image keeps exactly the version
//! it fetched — an in-flight scan never observes a torn or mixed-epoch
//! page, which is the PR 4 split-consistency invariant carried down to the
//! byte level.
//!
//! **No shard lock is ever held across an 8 KiB copy.** Borrowing `put`
//! paths ([`SideFile::put`], [`SideFile::put_if_absent`]) clone the caller's
//! page into a fresh image *before* taking the shard lock; owning paths
//! ([`SideFile::put_image`], [`SideFile::put_if_absent_image`]) never copy
//! at all. (The pre-image `SideFile` copied 8 KiB under the shard lock on
//! both `get` and `put`, serializing every same-shard reader behind the
//! memcpy.)

use crate::image::PageImage;
use crate::page::{Page, PAGE_SIZE};
use parking_lot::RwLock;
use rewind_common::PageId;
use std::collections::HashMap;

/// Number of shards (power of two so the pick is a mask).
const SIDE_SHARDS: usize = 16;

/// A page-addressed sparse store of immutable page-version images.
pub struct SideFile {
    shards: Vec<RwLock<HashMap<u64, PageImage>>>,
}

impl Default for SideFile {
    fn default() -> Self {
        SideFile {
            shards: (0..SIDE_SHARDS)
                .map(|_| RwLock::new(HashMap::new()))
                .collect(),
        }
    }
}

impl SideFile {
    /// An empty side file.
    pub fn new() -> Self {
        Self::default()
    }

    #[inline]
    fn shard(&self, pid: u64) -> &RwLock<HashMap<u64, PageImage>> {
        &self.shards[rewind_common::shard_index(pid, SIDE_SHARDS)]
    }

    /// Whether the side file holds a version of `pid`.
    pub fn contains(&self, pid: PageId) -> bool {
        self.shard(pid.0).read().contains_key(&pid.0)
    }

    /// Fetch the stored version of `pid`, if any. An `Arc` clone: zero page
    /// bytes copied, shard lock held only for the probe.
    pub fn get(&self, pid: PageId) -> Option<PageImage> {
        self.shard(pid.0).read().get(&pid.0).cloned()
    }

    /// Store (or overwrite) the version of `pid` from an owned image — the
    /// zero-copy install path. Readers holding the previous image keep it
    /// (epoch stability); new readers see `image`.
    pub fn put_image(&self, pid: PageId, image: PageImage) {
        self.shard(pid.0).write().insert(pid.0, image);
    }

    /// Store (or overwrite) the version of `pid` from a borrowed page. The
    /// 8 KiB copy into a fresh image happens *before* the shard lock is
    /// taken.
    pub fn put(&self, pid: PageId, page: &Page) {
        let image = PageImage::new(page.clone());
        self.put_image(pid, image);
    }

    /// Store the version of `pid` only if none is present yet. Returns
    /// whether the page was stored. This is the copy-on-write primitive:
    /// only the *first* post-snapshot modification pushes the old image.
    ///
    /// The copy is made outside the shard lock; a cheap shared-mode probe
    /// first skips the copy entirely when a version is already present (the
    /// common case — every modification after the first).
    pub fn put_if_absent(&self, pid: PageId, page: &Page) -> bool {
        if self.shard(pid.0).read().contains_key(&pid.0) {
            return false;
        }
        self.put_if_absent_image(pid, PageImage::new(page.clone()))
    }

    /// [`SideFile::put_if_absent`] from an owned image (no copy at all).
    pub fn put_if_absent_image(&self, pid: PageId, image: PageImage) -> bool {
        let mut shard = self.shard(pid.0).write();
        if let std::collections::hash_map::Entry::Vacant(e) = shard.entry(pid.0) {
            e.insert(image);
            true
        } else {
            false
        }
    }

    /// Number of page versions stored.
    pub fn len(&self) -> usize {
        self.shards.iter().map(|s| s.read().len()).sum()
    }

    /// Whether the side file is empty.
    pub fn is_empty(&self) -> bool {
        self.shards.iter().all(|s| s.read().is_empty())
    }

    /// Total bytes held (the "size" of the sparse file).
    pub fn bytes(&self) -> u64 {
        (self.len() * PAGE_SIZE) as u64
    }

    /// Page ids currently stored (diagnostics, tests).
    pub fn page_ids(&self) -> Vec<PageId> {
        let mut v: Vec<PageId> = self
            .shards
            .iter()
            .flat_map(|s| s.read().keys().map(|&k| PageId(k)).collect::<Vec<_>>())
            .collect();
        v.sort();
        v
    }
}

impl std::fmt::Debug for SideFile {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SideFile")
            .field("pages", &self.len())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::page::PageType;
    use rewind_common::{Lsn, ObjectId};

    #[test]
    fn put_get_contains() {
        let sf = SideFile::new();
        assert!(sf.is_empty());
        assert!(!sf.contains(PageId(5)));
        assert!(sf.get(PageId(5)).is_none());

        let mut p = Page::formatted(PageId(5), ObjectId(2), PageType::BTreeLeaf);
        p.set_page_lsn(Lsn(44));
        sf.put(PageId(5), &p);
        assert!(sf.contains(PageId(5)));
        let q = sf.get(PageId(5)).unwrap();
        assert_eq!(q.page_lsn(), Lsn(44));
        assert_eq!(sf.len(), 1);
        assert_eq!(sf.bytes(), PAGE_SIZE as u64);
    }

    #[test]
    fn get_is_shared_not_copied() {
        let sf = SideFile::new();
        sf.put_image(
            PageId(4),
            PageImage::new(Page::formatted(PageId(4), ObjectId(1), PageType::Heap)),
        );
        let a = sf.get(PageId(4)).unwrap();
        let b = sf.get(PageId(4)).unwrap();
        assert!(a.same_as(&b), "hits share one allocation");
    }

    #[test]
    fn overwrite_preserves_in_flight_readers_epoch() {
        let sf = SideFile::new();
        let mut v1 = Page::formatted(PageId(9), ObjectId(2), PageType::Heap);
        v1.set_page_lsn(Lsn(10));
        sf.put(PageId(9), &v1);
        let held = sf.get(PageId(9)).unwrap();
        // undo fix-up overwrites the stored entry...
        let mut v2 = v1.clone();
        v2.set_page_lsn(Lsn(20));
        sf.put_image(PageId(9), PageImage::new(v2));
        // ...but the in-flight reader keeps the version it fetched
        assert_eq!(held.page_lsn(), Lsn(10));
        assert_eq!(sf.get(PageId(9)).unwrap().page_lsn(), Lsn(20));
        assert!(!held.same_as(&sf.get(PageId(9)).unwrap()));
    }

    #[test]
    fn cow_put_if_absent_keeps_first_version() {
        let sf = SideFile::new();
        let mut v1 = Page::formatted(PageId(9), ObjectId(2), PageType::Heap);
        v1.set_page_lsn(Lsn(10));
        let mut v2 = v1.clone();
        v2.set_page_lsn(Lsn(20));
        assert!(sf.put_if_absent(PageId(9), &v1));
        assert!(!sf.put_if_absent(PageId(9), &v2));
        assert_eq!(sf.get(PageId(9)).unwrap().page_lsn(), Lsn(10));
        // but an explicit put (undo fix-up path) does overwrite
        sf.put(PageId(9), &v2);
        assert_eq!(sf.get(PageId(9)).unwrap().page_lsn(), Lsn(20));
    }

    #[test]
    fn page_ids_sorted() {
        let sf = SideFile::new();
        for pid in [7u64, 3, 5] {
            sf.put(PageId(pid), &Page::zeroed());
        }
        assert_eq!(sf.page_ids(), vec![PageId(3), PageId(5), PageId(7)]);
    }

    #[test]
    fn many_pages_spread_across_shards() {
        let sf = SideFile::new();
        for pid in 1..=200u64 {
            sf.put(PageId(pid), &Page::zeroed());
        }
        assert_eq!(sf.len(), 200);
        assert_eq!(sf.page_ids().len(), 200);
        for pid in 1..=200u64 {
            assert!(sf.contains(PageId(pid)));
        }
    }
}
