//! The snapshot side file — our substitute for NTFS sparse files.
//!
//! SQL Server database snapshots store page versions in NTFS sparse files
//! (paper §2.2): a page-addressed store that holds only the pages that have
//! been pushed to it, and answers "do you have page X?" cheaply. Regular
//! snapshots fill it via copy-on-write from the primary; as-of snapshots use
//! it as a cache of pages already unwound to the SplitLSN (§5.3) and as the
//! destination for pages fixed up by background logical undo (§5.2).
//!
//! [`SideFile`] reproduces those semantics with a **sharded** hash-indexed
//! page store: the map is split into pid-hashed shards, each behind its own
//! `RwLock`, so concurrent snapshot readers never block behind a writer
//! (a preparer's `put`, undo's fix-up, or a COW push) landing on an
//! unrelated shard. Within a shard, reads are shared; only a `put` takes
//! the shard exclusively.

use crate::page::{Page, PAGE_SIZE};
use parking_lot::RwLock;
use rewind_common::PageId;
use std::collections::HashMap;

/// Number of shards (power of two so the pick is a mask).
const SIDE_SHARDS: usize = 16;

/// A page-addressed sparse store of page versions.
pub struct SideFile {
    shards: Vec<RwLock<HashMap<u64, Box<[u8; PAGE_SIZE]>>>>,
}

impl Default for SideFile {
    fn default() -> Self {
        SideFile {
            shards: (0..SIDE_SHARDS)
                .map(|_| RwLock::new(HashMap::new()))
                .collect(),
        }
    }
}

impl SideFile {
    /// An empty side file.
    pub fn new() -> Self {
        Self::default()
    }

    #[inline]
    fn shard(&self, pid: u64) -> &RwLock<HashMap<u64, Box<[u8; PAGE_SIZE]>>> {
        &self.shards[rewind_common::shard_index(pid, SIDE_SHARDS)]
    }

    /// Whether the side file holds a version of `pid`.
    pub fn contains(&self, pid: PageId) -> bool {
        self.shard(pid.0).read().contains_key(&pid.0)
    }

    /// Fetch the stored version of `pid`, if any.
    pub fn get(&self, pid: PageId) -> Option<Page> {
        self.shard(pid.0).read().get(&pid.0).map(|img| {
            let mut p = Page::zeroed();
            p.restore_image(img);
            p
        })
    }

    /// Store (or overwrite) the version of `pid`.
    pub fn put(&self, pid: PageId, page: &Page) {
        self.shard(pid.0)
            .write()
            .insert(pid.0, Box::new(*page.image()));
    }

    /// Store the version of `pid` only if none is present yet. Returns
    /// whether the page was stored. This is the copy-on-write primitive:
    /// only the *first* post-snapshot modification pushes the old image.
    pub fn put_if_absent(&self, pid: PageId, page: &Page) -> bool {
        let mut shard = self.shard(pid.0).write();
        if let std::collections::hash_map::Entry::Vacant(e) = shard.entry(pid.0) {
            e.insert(Box::new(*page.image()));
            true
        } else {
            false
        }
    }

    /// Number of page versions stored.
    pub fn len(&self) -> usize {
        self.shards.iter().map(|s| s.read().len()).sum()
    }

    /// Whether the side file is empty.
    pub fn is_empty(&self) -> bool {
        self.shards.iter().all(|s| s.read().is_empty())
    }

    /// Total bytes held (the "size" of the sparse file).
    pub fn bytes(&self) -> u64 {
        (self.len() * PAGE_SIZE) as u64
    }

    /// Page ids currently stored (diagnostics, tests).
    pub fn page_ids(&self) -> Vec<PageId> {
        let mut v: Vec<PageId> = self
            .shards
            .iter()
            .flat_map(|s| s.read().keys().map(|&k| PageId(k)).collect::<Vec<_>>())
            .collect();
        v.sort();
        v
    }
}

impl std::fmt::Debug for SideFile {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SideFile")
            .field("pages", &self.len())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::page::PageType;
    use rewind_common::{Lsn, ObjectId};

    #[test]
    fn put_get_contains() {
        let sf = SideFile::new();
        assert!(sf.is_empty());
        assert!(!sf.contains(PageId(5)));
        assert!(sf.get(PageId(5)).is_none());

        let mut p = Page::formatted(PageId(5), ObjectId(2), PageType::BTreeLeaf);
        p.set_page_lsn(Lsn(44));
        sf.put(PageId(5), &p);
        assert!(sf.contains(PageId(5)));
        let q = sf.get(PageId(5)).unwrap();
        assert_eq!(q.page_lsn(), Lsn(44));
        assert_eq!(sf.len(), 1);
        assert_eq!(sf.bytes(), PAGE_SIZE as u64);
    }

    #[test]
    fn cow_put_if_absent_keeps_first_version() {
        let sf = SideFile::new();
        let mut v1 = Page::formatted(PageId(9), ObjectId(2), PageType::Heap);
        v1.set_page_lsn(Lsn(10));
        let mut v2 = v1.clone();
        v2.set_page_lsn(Lsn(20));
        assert!(sf.put_if_absent(PageId(9), &v1));
        assert!(!sf.put_if_absent(PageId(9), &v2));
        assert_eq!(sf.get(PageId(9)).unwrap().page_lsn(), Lsn(10));
        // but an explicit put (undo fix-up path) does overwrite
        sf.put(PageId(9), &v2);
        assert_eq!(sf.get(PageId(9)).unwrap().page_lsn(), Lsn(20));
    }

    #[test]
    fn page_ids_sorted() {
        let sf = SideFile::new();
        for pid in [7u64, 3, 5] {
            sf.put(PageId(pid), &Page::zeroed());
        }
        assert_eq!(sf.page_ids(), vec![PageId(3), PageId(5), PageId(7)]);
    }

    #[test]
    fn many_pages_spread_across_shards() {
        let sf = SideFile::new();
        for pid in 1..=200u64 {
            sf.put(PageId(pid), &Page::zeroed());
        }
        assert_eq!(sf.len(), 200);
        assert_eq!(sf.page_ids().len(), 200);
        for pid in 1..=200u64 {
            assert!(sf.contains(PageId(pid)));
        }
    }
}
