//! Allocation-map page layout.
//!
//! Allocation state is stored *in data pages* (paper §3: "Allocation maps are
//! also stored in data pages and updates are logged as regular page
//! modifications"), which is precisely what lets as-of snapshots unwind
//! allocation state with the same physical undo used for everything else.
//!
//! Each allocation-map page covers a fixed region of the database file with
//! two bits per page:
//!
//! * **allocated** — the page currently belongs to some object;
//! * **ever-allocated** — the page has been allocated at least once in its
//!   lifetime. Paper §4.2: first allocations of virgin pages skip the
//!   preformat record (nothing useful to preserve), re-allocations must log
//!   one to splice the old per-page chain to the new one.
//!
//! The map for region `r` (pages `[r·R, (r+1)·R)`, `R =` [`REGION_SIZE`])
//! lives at page `r·R`, except region 0 whose map lives at page 1 because
//! page 0 is the boot page. Map pages and the boot page are marked allocated
//! in their own bitmaps at format time.

use crate::page::{Page, PageType, HEADER_SIZE, PAGE_SIZE, TRAILER_SIZE};
use rewind_common::{Error, ObjectId, PageId, Result};

/// Number of page-state bit-pairs that fit in one allocation-map page body.
pub const MAP_CAPACITY: usize = (PAGE_SIZE - HEADER_SIZE - TRAILER_SIZE) * 4;

/// Pages per allocation region: one map page + the pages it covers
/// (including itself).
pub const REGION_SIZE: u64 = MAP_CAPACITY as u64;

/// Allocation state of one page.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct PageState {
    /// Page currently allocated to an object.
    pub allocated: bool,
    /// Page has been allocated at least once (never cleared).
    pub ever_allocated: bool,
}

impl PageState {
    /// The state of a virgin page.
    pub const FREE: PageState = PageState {
        allocated: false,
        ever_allocated: false,
    };

    /// Pack into the two-bit on-page representation.
    pub fn to_bits(self) -> u8 {
        (self.allocated as u8) | ((self.ever_allocated as u8) << 1)
    }

    /// Unpack from the two-bit on-page representation.
    pub fn from_bits(b: u8) -> PageState {
        PageState {
            allocated: b & 1 != 0,
            ever_allocated: b & 2 != 0,
        }
    }
}

/// The allocation-map page that covers `pid`, or `None` for map pages and the
/// boot page themselves (their state lives in their own region's map).
pub fn map_page_for(pid: PageId) -> PageId {
    let r = pid.0 / REGION_SIZE;
    if r == 0 {
        PageId(1)
    } else {
        PageId(r * REGION_SIZE)
    }
}

/// Whether `pid` is an allocation-map page.
pub fn is_map_page(pid: PageId) -> bool {
    pid.0 == 1 || (pid.0 != 0 && pid.0.is_multiple_of(REGION_SIZE))
}

/// Index of `pid`'s bit-pair within its covering map page.
pub fn bit_index(pid: PageId) -> usize {
    (pid.0 % REGION_SIZE) as usize
}

/// First page id of the region covered by map page `map_pid`.
pub fn region_base(map_pid: PageId) -> u64 {
    if map_pid.0 == 1 {
        0
    } else {
        map_pid.0
    }
}

/// Read the state bit-pair at `index` from a map page.
pub fn get_state(map: &Page, index: usize) -> Result<PageState> {
    check_map(map, index)?;
    let byte = map.body()[index / 4];
    Ok(PageState::from_bits((byte >> ((index % 4) * 2)) & 0b11))
}

/// Write the state bit-pair at `index` on a map page.
pub fn set_state(map: &mut Page, index: usize, st: PageState) -> Result<()> {
    check_map(map, index)?;
    let shift = (index % 4) * 2;
    let b = &mut map.body_mut()[index / 4];
    *b = (*b & !(0b11 << shift)) | (st.to_bits() << shift);
    Ok(())
}

/// Find the first free bit-pair at or after `from`, if any.
pub fn find_free(map: &Page, from: usize) -> Option<usize> {
    if map.page_type() != PageType::AllocMap {
        return None;
    }
    let body = map.body();
    for index in from..MAP_CAPACITY {
        let byte = body[index / 4];
        if byte == 0xFF {
            // all four pairs at least have the `allocated` bit or `ever` bit
            // set; check the allocated bits only.
            if byte & 0b0101_0101 == 0b0101_0101 {
                continue;
            }
        }
        if byte >> ((index % 4) * 2) & 1 == 0 {
            return Some(index);
        }
    }
    None
}

/// Count pages currently allocated in the map.
pub fn count_allocated(map: &Page) -> usize {
    map.body()
        .iter()
        .map(|b| ((b & 0b0101_0101).count_ones()) as usize)
        .sum()
}

/// Format a fresh allocation-map page for the region containing `map_pid`,
/// pre-marking the map page itself (and the boot page, for region 0) as
/// allocated.
pub fn format_map_page(map_pid: PageId) -> Page {
    let mut p = Page::formatted(map_pid, ObjectId::NONE, PageType::AllocMap);
    let perm = PageState {
        allocated: true,
        ever_allocated: true,
    };
    if map_pid.0 == 1 {
        // Boot page, then the map itself.
        // tidy: allow(no-panic) -- index 0 on a freshly formatted map page is within capacity
        set_state(&mut p, 0, perm).unwrap();
        // tidy: allow(no-panic) -- index 1 on a freshly formatted map page is within capacity
        set_state(&mut p, 1, perm).unwrap();
    } else {
        // tidy: allow(no-panic) -- index 0 on a freshly formatted map page is within capacity
        set_state(&mut p, 0, perm).unwrap();
    }
    p
}

fn check_map(map: &Page, index: usize) -> Result<()> {
    if map.page_type() != PageType::AllocMap {
        return Err(Error::corruption(format!(
            "page {:?} is not an allocation map (type {:?})",
            map.page_id(),
            map.page_type()
        )));
    }
    if index >= MAP_CAPACITY {
        return Err(Error::Internal(format!(
            "alloc bit index {index} out of range"
        )));
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn geometry() {
        assert_eq!(map_page_for(PageId(0)), PageId(1));
        assert_eq!(map_page_for(PageId(2)), PageId(1));
        assert_eq!(map_page_for(PageId(REGION_SIZE - 1)), PageId(1));
        assert_eq!(map_page_for(PageId(REGION_SIZE)), PageId(REGION_SIZE));
        assert_eq!(map_page_for(PageId(REGION_SIZE + 5)), PageId(REGION_SIZE));
        assert!(is_map_page(PageId(1)));
        assert!(is_map_page(PageId(REGION_SIZE)));
        assert!(!is_map_page(PageId(0)));
        assert!(!is_map_page(PageId(2)));
        assert_eq!(bit_index(PageId(2)), 2);
        assert_eq!(bit_index(PageId(REGION_SIZE + 7)), 7);
    }

    #[test]
    fn state_bits_roundtrip() {
        for (a, e) in [(false, false), (true, false), (false, true), (true, true)] {
            let st = PageState {
                allocated: a,
                ever_allocated: e,
            };
            assert_eq!(PageState::from_bits(st.to_bits()), st);
        }
    }

    #[test]
    fn set_get_find_free() {
        let mut m = format_map_page(PageId(1));
        // boot + self pre-allocated
        assert_eq!(
            get_state(&m, 0).unwrap(),
            PageState {
                allocated: true,
                ever_allocated: true
            }
        );
        assert_eq!(
            get_state(&m, 1).unwrap(),
            PageState {
                allocated: true,
                ever_allocated: true
            }
        );
        assert_eq!(find_free(&m, 0), Some(2));
        set_state(
            &mut m,
            2,
            PageState {
                allocated: true,
                ever_allocated: true,
            },
        )
        .unwrap();
        set_state(
            &mut m,
            3,
            PageState {
                allocated: true,
                ever_allocated: true,
            },
        )
        .unwrap();
        assert_eq!(find_free(&m, 0), Some(4));
        // dealloc keeps the ever bit
        set_state(
            &mut m,
            2,
            PageState {
                allocated: false,
                ever_allocated: true,
            },
        )
        .unwrap();
        assert_eq!(find_free(&m, 0), Some(2));
        assert_eq!(
            get_state(&m, 2).unwrap(),
            PageState {
                allocated: false,
                ever_allocated: true
            }
        );
        assert_eq!(count_allocated(&m), 3);
    }

    #[test]
    fn find_free_scans_past_full_bytes() {
        let mut m = format_map_page(PageId(REGION_SIZE));
        for i in 0..64 {
            set_state(
                &mut m,
                i,
                PageState {
                    allocated: true,
                    ever_allocated: true,
                },
            )
            .unwrap();
        }
        assert_eq!(find_free(&m, 0), Some(64));
        assert_eq!(find_free(&m, 70), Some(70));
    }

    #[test]
    fn full_map_returns_none() {
        let mut m = format_map_page(PageId(1));
        for i in 0..MAP_CAPACITY {
            set_state(
                &mut m,
                i,
                PageState {
                    allocated: true,
                    ever_allocated: true,
                },
            )
            .unwrap();
        }
        assert_eq!(find_free(&m, 0), None);
    }

    #[test]
    fn non_map_pages_rejected() {
        let p = Page::formatted(PageId(5), ObjectId(1), PageType::BTreeLeaf);
        assert!(get_state(&p, 0).is_err());
        assert_eq!(find_free(&p, 0), None);
    }
}
