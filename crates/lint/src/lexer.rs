//! A hand-rolled Rust lexer, sufficient for token-level lints.
//!
//! This is not a full rustc lexer: it does not classify keywords, does not
//! parse numeric suffixes precisely, and treats every operator character as
//! an individual [`TokKind::Punct`]. What it does do **correctly** — and
//! what regex-based "lints" always get wrong — is skip the places where
//! code-looking text is not code:
//!
//! * line comments (`//`, `///`, `//!`) to end of line;
//! * block comments (`/* */`, `/** */`), **nested** to arbitrary depth;
//! * string literals with escapes (`"ab\"c"`), including multi-line;
//! * raw strings with any hash count (`r"…"`, `r#"…"#`, `br##"…"##`,
//!   `c"…"`);
//! * byte strings and byte/char literals (`b"…"`, `b'x'`, `'\n'`,
//!   `'\u{1F4A9}'`);
//! * lifetimes vs char literals (`'a` vs `'a'`).
//!
//! Comments are kept as tokens (the tidy directives and `// SAFETY:`
//! audits live in them); literal *contents* are opaque — an `unwrap()`
//! inside a string is just a string.

/// What a token is. Just enough classification for the lints.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TokKind {
    /// Identifier or keyword (`unwrap`, `fn`, `r#match` — raw identifiers
    /// keep their `r#` prefix stripped).
    Ident,
    /// `'a` — a lifetime or loop label, *not* a char literal.
    Lifetime,
    /// Any numeric literal (`0xFF`, `1_000`, `2.5e3`).
    Number,
    /// `"…"`, `r#"…"#`, `b"…"`, `br#"…"#`, `c"…"` — all string shapes.
    Str,
    /// `'x'`, `b'\n'` — char and byte literals.
    Char,
    /// `// …` to end of line (doc comments included).
    LineComment,
    /// `/* … */`, nested. Doc block comments included.
    BlockComment,
    /// A single operator/delimiter character: `. , ; : { } ( ) [ ] ! # = < > & * + - / % | ^ ? @ ~ $`
    Punct,
}

/// One lexed token: kind plus byte span into the source and 1-based line.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Token {
    pub kind: TokKind,
    /// Byte offset of the first byte.
    pub start: usize,
    /// Byte offset one past the last byte.
    pub end: usize,
    /// 1-based line of the token's first byte.
    pub line: u32,
}

impl Token {
    /// The token's text within `src` (the source it was lexed from).
    pub fn text<'a>(&self, src: &'a str) -> &'a str {
        &src[self.start..self.end]
    }
}

/// Lex `src` into tokens, comments included. Never fails: unterminated
/// literals/comments are closed at end of input (a lint pass must not die
/// on a file rustc itself will reject with a better message).
pub fn lex(src: &str) -> Vec<Token> {
    Lexer {
        src: src.as_bytes(),
        pos: 0,
        line: 1,
        out: Vec::new(),
    }
    .run(src)
}

struct Lexer<'a> {
    src: &'a [u8],
    pos: usize,
    line: u32,
    out: Vec<Token>,
}

impl<'a> Lexer<'a> {
    fn peek(&self, off: usize) -> u8 {
        *self.src.get(self.pos + off).unwrap_or(&0)
    }

    /// Advance one byte, counting lines.
    fn bump(&mut self) {
        if self.peek(0) == b'\n' {
            self.line += 1;
        }
        self.pos += 1;
    }

    fn emit(&mut self, kind: TokKind, start: usize, line: u32) {
        self.out.push(Token {
            kind,
            start,
            end: self.pos,
            line,
        });
    }

    fn run(mut self, src_str: &str) -> Vec<Token> {
        while self.pos < self.src.len() {
            let c = self.peek(0);
            let start = self.pos;
            let line = self.line;
            match c {
                b' ' | b'\t' | b'\r' | b'\n' => self.bump(),
                b'/' if self.peek(1) == b'/' => {
                    while self.pos < self.src.len() && self.peek(0) != b'\n' {
                        self.bump();
                    }
                    self.emit(TokKind::LineComment, start, line);
                }
                b'/' if self.peek(1) == b'*' => {
                    self.bump();
                    self.bump();
                    let mut depth = 1usize;
                    while self.pos < self.src.len() && depth > 0 {
                        if self.peek(0) == b'/' && self.peek(1) == b'*' {
                            depth += 1;
                            self.bump();
                            self.bump();
                        } else if self.peek(0) == b'*' && self.peek(1) == b'/' {
                            depth -= 1;
                            self.bump();
                            self.bump();
                        } else {
                            self.bump();
                        }
                    }
                    self.emit(TokKind::BlockComment, start, line);
                }
                b'"' => {
                    self.cooked_string();
                    self.emit(TokKind::Str, start, line);
                }
                b'\'' => {
                    self.char_or_lifetime(start, line);
                }
                b'0'..=b'9' => {
                    // Numbers: consume digits, letters (hex / suffixes / e
                    // notation), underscores, and a decimal point followed
                    // by a digit. `1.max(2)` keeps the `.` as punct.
                    self.bump();
                    loop {
                        let c = self.peek(0);
                        let dot = c == b'.' && self.peek(1).is_ascii_digit();
                        if c.is_ascii_alphanumeric() || c == b'_' || dot {
                            self.bump();
                        } else {
                            break;
                        }
                    }
                    self.emit(TokKind::Number, start, line);
                }
                c if c == b'_' || c.is_ascii_alphabetic() => {
                    self.ident_or_prefixed_literal(start, line, src_str);
                }
                _ => {
                    self.bump();
                    self.emit(TokKind::Punct, start, line);
                }
            }
        }
        self.out
    }

    /// Consume a `"`-delimited string with `\` escapes (cursor on the
    /// opening quote).
    fn cooked_string(&mut self) {
        self.bump(); // opening "
        while self.pos < self.src.len() {
            match self.peek(0) {
                b'\\' => {
                    self.bump();
                    if self.pos < self.src.len() {
                        self.bump();
                    }
                }
                b'"' => {
                    self.bump();
                    return;
                }
                _ => self.bump(),
            }
        }
    }

    /// Consume a raw string `r##"…"##` — cursor on the first `#` or `"`
    /// after the `r`/`br`/`cr` prefix has been consumed.
    fn raw_string(&mut self) {
        let mut hashes = 0usize;
        while self.peek(0) == b'#' {
            hashes += 1;
            self.bump();
        }
        debug_assert_eq!(self.peek(0), b'"');
        self.bump(); // opening "
        while self.pos < self.src.len() {
            if self.peek(0) == b'"' {
                // A closing quote must be followed by `hashes` hash marks.
                let mut ok = true;
                for i in 0..hashes {
                    if self.peek(1 + i) != b'#' {
                        ok = false;
                        break;
                    }
                }
                if ok {
                    self.bump();
                    for _ in 0..hashes {
                        self.bump();
                    }
                    return;
                }
            }
            self.bump();
        }
    }

    /// `'` — either a char/byte literal or a lifetime. Rust's own rule:
    /// `'` followed by an identifier char NOT followed by a closing `'`
    /// is a lifetime; everything else is a (possibly escaped) char.
    fn char_or_lifetime(&mut self, start: usize, line: u32) {
        self.bump(); // '
        let c = self.peek(0);
        if c == b'\\' {
            // Escaped char literal: consume escape then to closing quote.
            self.bump();
            self.bump();
            while self.pos < self.src.len() && self.peek(0) != b'\'' {
                self.bump();
            }
            if self.pos < self.src.len() {
                self.bump();
            }
            self.emit(TokKind::Char, start, line);
        } else if (c == b'_' || c.is_ascii_alphanumeric()) && self.peek(1) != b'\'' {
            // Lifetime: consume the identifier.
            while {
                let c = self.peek(0);
                c == b'_' || c.is_ascii_alphanumeric()
            } {
                self.bump();
            }
            self.emit(TokKind::Lifetime, start, line);
        } else {
            // Plain char literal `'x'` (or `''` which rustc rejects — we
            // just consume to the closing quote).
            self.bump();
            while self.pos < self.src.len() && self.peek(0) != b'\'' {
                self.bump();
            }
            if self.pos < self.src.len() {
                self.bump();
            }
            self.emit(TokKind::Char, start, line);
        }
    }

    /// An identifier — or a literal prefix (`r"`, `br#"`, `b"`, `b'`,
    /// `c"`, `r#ident`).
    fn ident_or_prefixed_literal(&mut self, start: usize, line: u32, src_str: &str) {
        // Raw identifier r#name: skip the prefix, lex as ident.
        if self.peek(0) == b'r' && self.peek(1) == b'#' && {
            let c = self.peek(2);
            c == b'_' || c.is_ascii_alphabetic()
        } {
            self.bump();
            self.bump();
            while {
                let c = self.peek(0);
                c == b'_' || c.is_ascii_alphanumeric()
            } {
                self.bump();
            }
            self.emit(TokKind::Ident, start, line);
            return;
        }
        // Consume the identifier body first.
        while {
            let c = self.peek(0);
            c == b'_' || c.is_ascii_alphanumeric()
        } {
            self.bump();
        }
        let text = &src_str[start..self.pos];
        // Literal prefixes: ident immediately followed by a quote (or by
        // `#…"` for raw shapes).
        let next = self.peek(0);
        let raw = matches!(text, "r" | "br" | "cr" | "rb");
        let cooked = matches!(text, "b" | "c");
        if raw && (next == b'"' || (next == b'#' && self.raw_hashes_then_quote())) {
            self.raw_string();
            self.emit(TokKind::Str, start, line);
        } else if (cooked || raw) && next == b'"' {
            self.cooked_string();
            self.emit(TokKind::Str, start, line);
        } else if text == "b" && next == b'\'' {
            self.char_or_lifetime(start, line);
            // char_or_lifetime emitted a token starting at the quote; fix
            // it up to cover the `b` prefix.
            if let Some(last) = self.out.last_mut() {
                last.start = start;
                last.line = line;
            }
        } else {
            self.emit(TokKind::Ident, start, line);
        }
    }

    /// At `#…` — true if a run of `#` ends at `"` (raw string opener).
    fn raw_hashes_then_quote(&self) -> bool {
        let mut i = 0;
        while self.peek(i) == b'#' {
            i += 1;
        }
        i > 0 && self.peek(i) == b'"'
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<(TokKind, String)> {
        lex(src)
            .iter()
            .map(|t| (t.kind, t.text(src).to_string()))
            .collect()
    }

    #[test]
    fn idents_and_punct() {
        let got = kinds("foo.bar(x)?;");
        let texts: Vec<&str> = got.iter().map(|(_, t)| t.as_str()).collect();
        assert_eq!(texts, ["foo", ".", "bar", "(", "x", ")", "?", ";"]);
        assert_eq!(got[0].0, TokKind::Ident);
        assert_eq!(got[1].0, TokKind::Punct);
    }

    #[test]
    fn strings_hide_their_contents() {
        let src = r#"let s = "a.unwrap() // not a comment"; x.unwrap();"#;
        let got = kinds(src);
        let unwraps = got
            .iter()
            .filter(|(k, t)| *k == TokKind::Ident && t == "unwrap")
            .count();
        assert_eq!(unwraps, 1, "{got:?}");
        assert!(got.iter().all(|(k, _)| *k != TokKind::LineComment));
    }

    #[test]
    fn raw_strings_with_hashes() {
        let src = r###"let s = r#"quote " inside, panic!()"#; done()"###;
        let got = kinds(src);
        assert!(got
            .iter()
            .any(|(k, t)| *k == TokKind::Str && t.contains("panic")));
        assert!(got.iter().any(|(k, t)| *k == TokKind::Ident && t == "done"));
        assert!(!got
            .iter()
            .any(|(k, t)| *k == TokKind::Ident && t == "panic"));
    }

    #[test]
    fn byte_and_c_strings() {
        let src = r###"let a = b"bytes"; let b2 = br#"raw"#; let c1 = c"cstr";"###;
        let got = kinds(src);
        let strs = got.iter().filter(|(k, _)| *k == TokKind::Str).count();
        assert_eq!(strs, 3, "{got:?}");
    }

    #[test]
    fn nested_block_comments() {
        let src = "a /* outer /* inner */ still comment */ b";
        let got = kinds(src);
        assert_eq!(got.len(), 3);
        assert_eq!(got[0].1, "a");
        assert_eq!(got[1].0, TokKind::BlockComment);
        assert_eq!(got[2].1, "b");
    }

    #[test]
    fn lifetimes_vs_chars() {
        let src = "fn f<'a>(x: &'a str) { let c = 'x'; let n = '\\n'; let u = '\\u{41}'; }";
        let got = kinds(src);
        let lifetimes = got.iter().filter(|(k, _)| *k == TokKind::Lifetime).count();
        let chars = got.iter().filter(|(k, _)| *k == TokKind::Char).count();
        assert_eq!(lifetimes, 2, "{got:?}");
        assert_eq!(chars, 3, "{got:?}");
    }

    #[test]
    fn line_numbers_are_exact() {
        let src = "a\nb\n\n  c /* x\n y */ d\ne";
        let toks = lex(src);
        let lines: Vec<(String, u32)> = toks
            .iter()
            .map(|t| (t.text(src).to_string(), t.line))
            .collect();
        assert_eq!(lines[0], ("a".into(), 1));
        assert_eq!(lines[1], ("b".into(), 2));
        assert_eq!(lines[2], ("c".into(), 4));
        assert_eq!(lines[4], ("d".into(), 5));
        assert_eq!(lines[5], ("e".into(), 6));
    }

    #[test]
    fn numbers_do_not_eat_method_calls() {
        let src = "let x = 1.max(2); let y = 1.5; let z = 0xFF_u32;";
        let got = kinds(src);
        assert!(got.iter().any(|(k, t)| *k == TokKind::Ident && t == "max"));
        assert!(got.iter().any(|(k, t)| *k == TokKind::Number && t == "1.5"));
        assert!(got
            .iter()
            .any(|(k, t)| *k == TokKind::Number && t == "0xFF_u32"));
    }

    #[test]
    fn raw_identifiers() {
        let got = kinds("let r#match = 1;");
        assert!(got
            .iter()
            .any(|(k, t)| *k == TokKind::Ident && t == "r#match"));
    }

    #[test]
    fn unterminated_inputs_do_not_hang() {
        for src in ["\"abc", "/* never closed", "r#\"raw", "'"] {
            let _ = lex(src); // must terminate
        }
    }
}
