//! `rewind-lint` — the rewind-tidy CLI.
//!
//! ```text
//! cargo run -p rewind-lint --release              # lint the workspace, exit 1 on findings
//! cargo run -p rewind-lint --release -- --json tidy-report.json
//! cargo run -p rewind-lint --release -- --list    # lint catalog
//! cargo run -p rewind-lint --release -- --root /path/to/workspace
//! ```

use std::path::PathBuf;
use std::process::ExitCode;

use rewind_lint::{lints, run, walk};

fn main() -> ExitCode {
    let mut args = std::env::args().skip(1);
    let mut root: Option<PathBuf> = None;
    let mut json_path: Option<Option<PathBuf>> = None;
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--list" => {
                for (name, summary) in lints::ALL {
                    println!("{name:16} {summary}");
                }
                return ExitCode::SUCCESS;
            }
            "--root" => match args.next() {
                Some(p) => root = Some(PathBuf::from(p)),
                None => {
                    eprintln!("--root needs a path");
                    return ExitCode::from(2);
                }
            },
            "--json" => {
                // Optional file operand; bare `--json` prints to stdout.
                json_path = Some(args.next().map(PathBuf::from));
            }
            "--help" | "-h" => {
                println!(
                    "rewind-tidy: static enforcement of the ROADMAP invariants\n\
                     \n\
                     usage: rewind-lint [--root DIR] [--json [FILE]] [--list]\n\
                     \n\
                     Exits 0 when the tree is clean, 1 on findings, 2 on usage/IO errors.\n\
                     Escape hatch: `// tidy: allow(<lint>) -- <reason>` on or above the line."
                );
                return ExitCode::SUCCESS;
            }
            other => {
                eprintln!("unknown argument: {other} (try --help)");
                return ExitCode::from(2);
            }
        }
    }

    let root = match root.or_else(|| {
        std::env::current_dir()
            .ok()
            .and_then(|d| walk::find_workspace_root(&d))
    }) {
        Some(r) => r,
        None => {
            eprintln!(
                "could not locate the workspace root (no Cargo.toml with [workspace]); pass --root"
            );
            return ExitCode::from(2);
        }
    };

    let files = match walk::walk_workspace(&root) {
        Ok(f) => f,
        Err(e) => {
            eprintln!("walking {} failed: {e}", root.display());
            return ExitCode::from(2);
        }
    };
    let result = run(&files);

    if let Some(dest) = &json_path {
        let json =
            rewind_lint::report::to_json(&result.findings, &result.allows, result.files_scanned);
        match dest {
            Some(path) => {
                if let Err(e) = std::fs::write(path, &json) {
                    eprintln!("writing {} failed: {e}", path.display());
                    return ExitCode::from(2);
                }
            }
            None => print!("{json}"),
        }
    }

    for f in &result.findings {
        println!("{}:{}: [{}] {}", f.path, f.line, f.lint, f.message);
    }
    println!(
        "tidy: {} files, {} finding{}, {} explained allow{}",
        result.files_scanned,
        result.findings.len(),
        if result.findings.len() == 1 { "" } else { "s" },
        result.allows.len(),
        if result.allows.len() == 1 { "" } else { "s" },
    );
    if !result.allows.is_empty() && result.findings.is_empty() {
        for a in &result.allows {
            println!("  allow {}:{} [{}] -- {}", a.path, a.line, a.lint, a.reason);
        }
    }
    if result.findings.is_empty() {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}
