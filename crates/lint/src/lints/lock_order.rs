//! `lock-order`: the annotated acquisition order is a DAG.
//!
//! Nested lock acquisitions are annotated at the acquisition site:
//!
//! ```text
//! // tidy: lock-order(pool_shard < side_shard) -- miss path installs into the side file
//! ```
//!
//! reading "`pool_shard` is (somewhere) held while `side_shard` is
//! acquired". All facts across the workspace form one directed graph;
//! any cycle means two code paths can acquire the same pair of locks in
//! opposite orders — a deadlock waiting for the right interleaving — and
//! fails the run, naming the cycle. Unlike a runtime lock witness this
//! costs nothing and fires before the interleaving is ever scheduled;
//! unlike a reviewer it never forgets PR 4's ordering while reading PR 9.

use std::collections::BTreeMap;

use crate::report::{Finding, LockOrderFact};

pub fn check(facts: &[LockOrderFact], out: &mut Vec<Finding>) {
    if facts.is_empty() {
        return;
    }
    // Adjacency: first → then. BTreeMap for deterministic reporting.
    let mut edges: BTreeMap<&str, Vec<&LockOrderFact>> = BTreeMap::new();
    for f in facts {
        edges.entry(f.first.as_str()).or_default().push(f);
    }
    // Iterative DFS with colouring; on a back edge, reconstruct the cycle.
    #[derive(Clone, Copy, PartialEq)]
    enum Colour {
        White,
        Grey,
        Black,
    }
    let mut colour: BTreeMap<&str, Colour> = BTreeMap::new();
    let nodes: Vec<&str> = facts
        .iter()
        .flat_map(|f| [f.first.as_str(), f.then.as_str()])
        .collect();
    for &n in &nodes {
        colour.entry(n).or_insert(Colour::White);
    }
    for &start in &nodes {
        if colour[start] != Colour::White {
            continue;
        }
        // Stack of (node, fact that led here).
        let mut path: Vec<(&str, Option<&LockOrderFact>)> = vec![(start, None)];
        let mut iters: Vec<usize> = vec![0];
        colour.insert(start, Colour::Grey);
        while let Some(&(node, _)) = path.last() {
            let idx = *iters.last().unwrap_or(&0);
            let next = edges.get(node).and_then(|v| v.get(idx)).copied();
            match next {
                Some(fact) => {
                    *iters.last_mut().expect("iters parallels path") += 1;
                    let to = fact.then.as_str();
                    match colour[to] {
                        Colour::Grey => {
                            // Cycle: slice of `path` from `to` onwards.
                            let pos = path.iter().position(|&(n, _)| n == to).unwrap_or(0);
                            let mut names: Vec<&str> =
                                path[pos..].iter().map(|&(n, _)| n).collect();
                            names.push(to);
                            out.push(Finding {
                                lint: "lock-order",
                                path: fact.path.clone(),
                                line: fact.line,
                                message: format!(
                                    "lock-order cycle: {} — two paths acquire \
                                     these locks in opposite orders (facts at: {})",
                                    names.join(" < "),
                                    path[pos..]
                                        .iter()
                                        .filter_map(|&(_, f)| f)
                                        .chain(std::iter::once(fact))
                                        .map(|f| format!("{}:{}", f.path, f.line))
                                        .collect::<Vec<_>>()
                                        .join(", ")
                                ),
                            });
                            // One cycle report per run is enough to act on.
                            return;
                        }
                        Colour::White => {
                            colour.insert(to, Colour::Grey);
                            path.push((to, Some(fact)));
                            iters.push(0);
                        }
                        Colour::Black => {}
                    }
                }
                None => {
                    colour.insert(node, Colour::Black);
                    path.pop();
                    iters.pop();
                }
            }
        }
    }
}
