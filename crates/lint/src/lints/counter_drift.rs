//! `counter-drift`: the obs crate's name tables cannot silently drift.
//!
//! Every observable has *three* appearances that must stay in sync by
//! hand — exactly the kind of invariant a reviewer stops re-checking by
//! PR 12:
//!
//! * an [`EventKind`] variant must be decodable (`from_u64`) and
//!   text-renderable (`name()`), or ring readers silently drop it /
//!   renderings misname it;
//! * a histogram field on `ObsInner` must be exposed by
//!   `impl MetricSource for Obs`, or it records forever and never
//!   reaches `to_text()` — a counter that lies by omission.
//!
//! The check is textual over token streams (this tool does not expand
//! macros or run code), which is precisely enough: the three sites are
//! plain `match` arms and method calls in `crates/obs`.

use crate::lexer::TokKind;
use crate::report::Finding;
use crate::walk::FileCtx;

const EVENT_FILE: &str = "crates/obs/src/event.rs";
const OBS_FILE: &str = "crates/obs/src/lib.rs";

pub fn check(files: &[FileCtx], out: &mut Vec<Finding>) {
    let event = files.iter().find(|f| f.path == EVENT_FILE);
    let lib = files.iter().find(|f| f.path == OBS_FILE);
    // Outside a full workspace run (fixture tests hand-build file sets)
    // the obs sources may simply be absent; nothing to check then.
    if let Some(event) = event {
        check_event_kind(event, out);
    }
    if let Some(lib) = lib {
        check_histograms(lib, out);
    }
}

/// Every variant of `enum EventKind` appears as an ident inside both the
/// `fn from_u64` body and the `fn name` body.
fn check_event_kind(ctx: &FileCtx, out: &mut Vec<Finding>) {
    let Some(variants) = enum_variants(ctx, "EventKind") else {
        out.push(Finding::new(
            "counter-drift",
            ctx,
            1,
            "expected `enum EventKind { … }` in this file (the drift check \
             tracks it; update crates/lint if it moved)"
                .to_string(),
        ));
        return;
    };
    for (fn_name, purpose) in [
        (
            "from_u64",
            "ring slots with this kind decode to None and are dropped",
        ),
        ("name", "text renderings cannot name this kind"),
    ] {
        let Some(body) = fn_body_idents(ctx, fn_name) else {
            out.push(Finding::new(
                "counter-drift",
                ctx,
                1,
                format!("expected `fn {fn_name}` in this file (drift check anchor)"),
            ));
            continue;
        };
        for (variant, line) in &variants {
            if !body.iter().any(|b| b == variant) {
                out.push(Finding::new(
                    "counter-drift",
                    ctx,
                    *line,
                    format!("`EventKind::{variant}` is missing from `fn {fn_name}` — {purpose}"),
                ));
            }
        }
    }
}

/// Every `Histogram`-typed field of `struct ObsInner` is exposed under a
/// name it prefixes in `impl MetricSource for Obs`.
fn check_histograms(ctx: &FileCtx, out: &mut Vec<Finding>) {
    let Some(fields) = struct_fields(ctx, "ObsInner") else {
        out.push(Finding::new(
            "counter-drift",
            ctx,
            1,
            "expected `struct ObsInner { … }` in this file (the drift check \
             tracks it; update crates/lint if it moved)"
                .to_string(),
        ));
        return;
    };
    let exposed = exposed_histogram_names(ctx);
    for (field, ty, line) in &fields {
        if ty != "Histogram" {
            continue;
        }
        if !exposed.iter().any(|e| e.starts_with(field.as_str())) {
            out.push(Finding::new(
                "counter-drift",
                ctx,
                *line,
                format!(
                    "histogram `ObsInner::{field}` is never exposed: add \
                     `out.histogram(\"{field}_us\", …)` to \
                     `impl MetricSource for Obs` or it will record samples \
                     that no exposition ever shows"
                ),
            ));
        }
    }
    if exposed.is_empty() && fields.iter().any(|(_, ty, _)| ty == "Histogram") {
        out.push(Finding::new(
            "counter-drift",
            ctx,
            1,
            "found no `out.histogram(\"…\", …)` exposition calls — \
             `impl MetricSource for Obs` is the registry's view of obs"
                .to_string(),
        ));
    }
}

/// Find `enum <name> { … }`; return `(variant ident, line)` at brace
/// depth 1.
fn enum_variants(ctx: &FileCtx, name: &str) -> Option<Vec<(String, u32)>> {
    let code: Vec<usize> = (0..ctx.tokens.len()).filter(|&i| ctx.is_code(i)).collect();
    let mut k = 0;
    while k + 2 < code.len() {
        if ctx.text(code[k]) == "enum" && ctx.text(code[k + 1]) == name {
            // Scan to the opening brace then collect depth-1 variant
            // idents: an ident directly following `{` or `,` (skipping
            // the `= <num>` discriminants and `(<types>)` payloads).
            let mut j = k + 2;
            while j < code.len() && ctx.text(code[j]) != "{" {
                j += 1;
            }
            let mut depth = 0usize;
            let mut variants = Vec::new();
            let mut expect_variant = false;
            while j < code.len() {
                let t = ctx.text(code[j]);
                match t {
                    "{" => {
                        depth += 1;
                        if depth == 1 {
                            expect_variant = true;
                        }
                    }
                    "}" => {
                        depth -= 1;
                        if depth == 0 {
                            return Some(variants);
                        }
                    }
                    "," if depth == 1 => expect_variant = true,
                    "[" => {
                        // Attribute/bracket group: skip to the matching `]`
                        // so its contents are not mistaken for variants.
                        let mut b = 1usize;
                        while b > 0 && j + 1 < code.len() {
                            j += 1;
                            match ctx.text(code[j]) {
                                "[" => b += 1,
                                "]" => b -= 1,
                                _ => {}
                            }
                        }
                    }
                    _ => {
                        if depth == 1
                            && expect_variant
                            && ctx.tokens[code[j]].kind == TokKind::Ident
                        {
                            variants.push((t.to_string(), ctx.tokens[code[j]].line));
                            expect_variant = false;
                        }
                    }
                }
                j += 1;
            }
            return Some(variants);
        }
        k += 1;
    }
    None
}

/// All idents inside the brace body of the first `fn <name>` in the file.
fn fn_body_idents(ctx: &FileCtx, name: &str) -> Option<Vec<String>> {
    let code: Vec<usize> = (0..ctx.tokens.len()).filter(|&i| ctx.is_code(i)).collect();
    let mut k = 0;
    while k + 1 < code.len() {
        if ctx.text(code[k]) == "fn" && ctx.text(code[k + 1]) == name {
            let mut j = k + 2;
            while j < code.len() && ctx.text(code[j]) != "{" {
                j += 1;
            }
            let mut depth = 0usize;
            let mut idents = Vec::new();
            while j < code.len() {
                match ctx.text(code[j]) {
                    "{" => depth += 1,
                    "}" => {
                        depth -= 1;
                        if depth == 0 {
                            return Some(idents);
                        }
                    }
                    t => {
                        if ctx.tokens[code[j]].kind == TokKind::Ident {
                            idents.push(t.to_string());
                        }
                    }
                }
                j += 1;
            }
            return Some(idents);
        }
        k += 1;
    }
    None
}

/// Fields of `struct <name> { field: Type, … }` as `(field, head type
/// ident, line)`.
fn struct_fields(ctx: &FileCtx, name: &str) -> Option<Vec<(String, String, u32)>> {
    let code: Vec<usize> = (0..ctx.tokens.len()).filter(|&i| ctx.is_code(i)).collect();
    let mut k = 0;
    while k + 2 < code.len() {
        if ctx.text(code[k]) == "struct" && ctx.text(code[k + 1]) == name {
            let mut j = k + 2;
            while j < code.len() && ctx.text(code[j]) != "{" {
                j += 1;
            }
            let mut depth = 0usize;
            let mut fields = Vec::new();
            while j < code.len() {
                let t = ctx.text(code[j]);
                match t {
                    "{" => depth += 1,
                    "}" => {
                        depth -= 1;
                        if depth == 0 {
                            return Some(fields);
                        }
                    }
                    ":" if depth == 1 => {
                        // field ident is the previous code token; the head
                        // type ident is the next (skipping `pub` paths is
                        // unnecessary — `:` binds the field).
                        let prev = code[j - 1];
                        let next = code.get(j + 1).copied();
                        if ctx.tokens[prev].kind == TokKind::Ident {
                            // Double-colon paths produce `:` `:`; skip the
                            // second half of a `::`.
                            if ctx.text(prev) == ":" || next.map(|n| ctx.text(n)) == Some(":") {
                                j += 1;
                                continue;
                            }
                            let ty = next
                                .filter(|&n| ctx.tokens[n].kind == TokKind::Ident)
                                .map(|n| ctx.text(n).to_string())
                                .unwrap_or_default();
                            fields.push((ctx.text(prev).to_string(), ty, ctx.tokens[prev].line));
                        }
                    }
                    _ => {}
                }
                j += 1;
            }
            return Some(fields);
        }
        k += 1;
    }
    None
}

/// String literals passed as the first argument of `.histogram(` calls
/// inside `impl MetricSource for Obs { … }`.
fn exposed_histogram_names(ctx: &FileCtx) -> Vec<String> {
    let code: Vec<usize> = (0..ctx.tokens.len()).filter(|&i| ctx.is_code(i)).collect();
    let mut out = Vec::new();
    let mut k = 0;
    while k + 3 < code.len() {
        if ctx.text(code[k]) == "impl"
            && ctx.text(code[k + 1]) == "MetricSource"
            && ctx.text(code[k + 2]) == "for"
            && ctx.text(code[k + 3]) == "Obs"
        {
            let mut j = k + 4;
            while j < code.len() && ctx.text(code[j]) != "{" {
                j += 1;
            }
            let mut depth = 0usize;
            while j < code.len() {
                match ctx.text(code[j]) {
                    "{" => depth += 1,
                    "}" => {
                        depth -= 1;
                        if depth == 0 {
                            return out;
                        }
                    }
                    // `.histogram("name", …)`
                    "histogram"
                        if j + 2 < code.len()
                            && ctx.text(code[j + 1]) == "("
                            && ctx.tokens[code[j + 2]].kind == TokKind::Str =>
                    {
                        let s = ctx.text(code[j + 2]).trim_matches('"');
                        out.push(s.to_string());
                    }
                    _ => {}
                }
                j += 1;
            }
            return out;
        }
        k += 1;
    }
    out
}
