//! Determinism & observability hygiene: `wall-clock`, `output-hygiene`,
//! `std-sync`.
//!
//! * **wall-clock** — `Instant`/`SystemTime` outside `crates/obs` (the
//!   timebase owner) and `crates/bench` (whose job is timing). Engine
//!   decisions must not read the clock: serial traces are replayed in
//!   tests and CI gates diff their accounting bit-for-bit, so a
//!   time-dependent branch is a nondeterminism bug. Wall-clock-by-design
//!   sites (lock-wait deadlines) take an explained allow.
//! * **output-hygiene** — `println!`/`eprintln!`/`print!`/`eprint!`/
//!   `dbg!` in library crates. Operator output goes through the obs
//!   exposition (`MetricsSnapshot::to_text`), not stray stdio that CI
//!   harnesses and embedders cannot capture or disable.
//! * **std-sync** — `std::sync::{Mutex,RwLock,Condvar}`. The workspace
//!   mandates the `parking_lot` shim: no lock poisoning (a panicking
//!   thread must not convert every later lock into a second panic —
//!   see `no-panic`), and one switch point when the real parking_lot
//!   is available. (`std::sync::{Arc,atomic,mpsc,OnceLock}` stay fine.)

use super::next_code;
use crate::lexer::TokKind;
use crate::report::Finding;
use crate::walk::{CrateKind, FileCtx};

/// Crates allowed to read the wall clock.
const CLOCK_CRATES: &[&str] = &["obs", "bench"];

const PRINT_MACROS: &[&str] = &["println", "eprintln", "print", "eprint", "dbg"];

const BANNED_SYNC: &[&str] = &["Mutex", "RwLock", "Condvar"];

pub fn check(ctx: &FileCtx, out: &mut Vec<Finding>) {
    let clock_ok = CLOCK_CRATES.contains(&ctx.crate_name.as_str());
    for i in 0..ctx.tokens.len() {
        if !ctx.is_code(i) || ctx.tokens[i].kind != TokKind::Ident {
            continue;
        }
        let text = ctx.text(i);
        let line = ctx.tokens[i].line;
        match text {
            "Instant" | "SystemTime" if !clock_ok => {
                out.push(Finding::new(
                    "wall-clock",
                    ctx,
                    line,
                    format!(
                        "`{text}` outside crates/obs and crates/bench — route \
                         timing through `Obs::now_us` (or justify with \
                         `// tidy: allow(wall-clock) -- <why wall time is the semantics>`)"
                    ),
                ));
            }
            _ if PRINT_MACROS.contains(&text)
                && ctx.kind == CrateKind::Library
                && next_code(ctx, i).is_some_and(|n| ctx.text(n) == "!") =>
            {
                out.push(Finding::new(
                    "output-hygiene",
                    ctx,
                    line,
                    format!(
                        "`{text}!` in library code — expose state through \
                         the obs metrics registry, not stdio"
                    ),
                ));
            }
            "sync" => check_std_sync(ctx, i, out),
            _ => {}
        }
    }
}

/// At an ident `sync`: flag `std :: sync :: Mutex|RwLock|Condvar` and the
/// grouped import `std :: sync :: { …, Mutex, … }`.
fn check_std_sync(ctx: &FileCtx, i: usize, out: &mut Vec<Finding>) {
    // Require the `std :: ` prefix (two `:` puncts then `std`), walking
    // strictly backwards over code tokens.
    let mut back = Vec::new();
    let mut j = i;
    while back.len() < 3 {
        match super::prev_code(ctx, j) {
            Some(p) => {
                back.push(p);
                j = p;
            }
            None => return,
        }
    }
    if ctx.text(back[0]) != ":" || ctx.text(back[1]) != ":" || ctx.text(back[2]) != "std" {
        return;
    }
    // Forward: `:: <Banned>` or `:: { … }`.
    let Some(c1) = next_code(ctx, i) else { return };
    let Some(c2) = next_code(ctx, c1) else { return };
    if ctx.text(c1) != ":" || ctx.text(c2) != ":" {
        return;
    }
    let Some(head) = next_code(ctx, c2) else {
        return;
    };
    let flag = |out: &mut Vec<Finding>, line: u32, name: &str| {
        out.push(Finding::new(
            "std-sync",
            ctx,
            line,
            format!(
                "`std::sync::{name}` — use the `parking_lot` shim \
                 (poison-free; see ROADMAP build note)"
            ),
        ));
    };
    let head_text = ctx.text(head);
    if BANNED_SYNC.contains(&head_text) {
        flag(out, ctx.tokens[head].line, head_text);
    } else if head_text == "{" {
        // Grouped import: scan to the matching `}`.
        let mut depth = 0usize;
        let mut k = head;
        loop {
            let t = ctx.text(k);
            match t {
                "{" => depth += 1,
                "}" => {
                    depth -= 1;
                    if depth == 0 {
                        break;
                    }
                }
                _ if ctx.tokens[k].kind == TokKind::Ident && BANNED_SYNC.contains(&t) => {
                    flag(out, ctx.tokens[k].line, t);
                }
                _ => {}
            }
            k = match next_code(ctx, k) {
                Some(n) => n,
                None => break,
            };
        }
    }
}
