//! `unsafe-audit`: every `unsafe` carries a `// SAFETY:` proof.
//!
//! The rule rustc applies to its own tree: an `unsafe` block, fn, or impl
//! must be immediately preceded — same line or the line above — by a
//! comment beginning `SAFETY:` stating the invariant that makes it sound.
//! The comment is part of the code: when the surrounding logic changes,
//! a stale proof is easier to spot than a bare `unsafe`.

use crate::lexer::TokKind;
use crate::report::Finding;
use crate::walk::FileCtx;

pub fn check(ctx: &FileCtx, out: &mut Vec<Finding>) {
    for i in 0..ctx.tokens.len() {
        if !ctx.is_code(i) || ctx.tokens[i].kind != TokKind::Ident || ctx.text(i) != "unsafe" {
            continue;
        }
        let line = ctx.tokens[i].line;
        if !has_safety_comment(ctx, line) {
            out.push(Finding::new(
                "unsafe-audit",
                ctx,
                line,
                "`unsafe` without an immediately preceding `// SAFETY:` \
                 comment — state the invariant that makes this sound"
                    .to_string(),
            ));
        }
    }
}

/// True if the comment run immediately above `line` (or a comment on
/// `line` itself) mentions `SAFETY:`. A "run" is consecutive lines each
/// covered by a comment token, so a proof wrapped over several `//`
/// lines counts as one unit; a multi-line `/* */` counts by its span.
fn has_safety_comment(ctx: &FileCtx, line: u32) -> bool {
    // Line coverage and SAFETY mentions per comment token.
    let mut covered: Vec<(u32, u32, bool)> = Vec::new(); // (first, last, has_safety)
    for t in &ctx.tokens {
        if !matches!(t.kind, TokKind::LineComment | TokKind::BlockComment) {
            continue;
        }
        let text = t.text(&ctx.source);
        let last = t.line + text.bytes().filter(|&b| b == b'\n').count() as u32;
        covered.push((t.line, last, text.contains("SAFETY:")));
    }
    // A trailing comment on the same line.
    if covered.iter().any(|&(f, l, s)| s && f <= line && line <= l) {
        return true;
    }
    // Walk the run of comment-covered lines ending at `line - 1`.
    let mut cursor = line.saturating_sub(1);
    loop {
        let Some(&(first, _, safety)) = covered
            .iter()
            .find(|&&(f, l, _)| f <= cursor && cursor <= l)
        else {
            return false;
        };
        if safety {
            return true;
        }
        if first == 0 || first > cursor {
            return false;
        }
        cursor = first.saturating_sub(1);
        if cursor == 0 {
            return false;
        }
    }
}
