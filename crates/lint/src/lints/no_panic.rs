//! `no-panic`: library code never panics.
//!
//! The media-hardening invariant (ROADMAP, PR 6) is that damage surfaces
//! as typed `Error::Corruption`, *never* a panic — and the multicore
//! recovery work ahead will run this code on worker threads where a panic
//! poisons nothing visible and simply loses the database. This lint makes
//! the invariant structural: in non-test library code,
//!
//! * `.unwrap()` / `.expect(…)` method calls,
//! * `panic!` / `unreachable!` / `todo!` / `unimplemented!` macros
//!
//! are findings. Provably-infallible sites (a `try_into` on a slice whose
//! length the previous line pinned) take an explained
//! `// tidy: allow(no-panic) -- <proof>`.
//!
//! Tool crates (`bench`) are exempt: a benchmark's top level may unwrap.

use super::{next_code, prev_code};
use crate::lexer::TokKind;
use crate::report::Finding;
use crate::walk::{CrateKind, FileCtx};

const PANIC_MACROS: &[&str] = &["panic", "unreachable", "todo", "unimplemented"];

pub fn check(ctx: &FileCtx, out: &mut Vec<Finding>) {
    if ctx.kind != CrateKind::Library {
        return;
    }
    for i in 0..ctx.tokens.len() {
        if !ctx.is_code(i) || ctx.tokens[i].kind != TokKind::Ident {
            continue;
        }
        let text = ctx.text(i);
        let line = ctx.tokens[i].line;
        match text {
            "unwrap" | "expect" => {
                // Method-call shape only: `.unwrap(` / `.expect(`.
                // (`unwrap_or`/`expect_err` lex as distinct idents, and
                // `#[expect(…)]` attributes lack the leading dot.)
                let dotted = prev_code(ctx, i).is_some_and(|p| ctx.text(p) == ".");
                let called = next_code(ctx, i).is_some_and(|n| ctx.text(n) == "(");
                if dotted && called {
                    out.push(Finding::new(
                        "no-panic",
                        ctx,
                        line,
                        format!(
                            "`.{text}()` in library code — return a typed \
                             `rewind_common::Error` (or justify with \
                             `// tidy: allow(no-panic) -- <why infallible>`)"
                        ),
                    ));
                }
            }
            _ if PANIC_MACROS.contains(&text)
                && next_code(ctx, i).is_some_and(|n| ctx.text(n) == "!") =>
            {
                out.push(Finding::new(
                    "no-panic",
                    ctx,
                    line,
                    format!(
                        "`{text}!` in library code — corruption and \
                         impossible states surface as `Error::Corruption`/\
                         `Error::Internal`, never a panic"
                    ),
                ));
            }
            _ => {}
        }
    }
}
