//! `lock-across-io`: no lock guard lives across a media call.
//!
//! PRs 4–5 established by hand that the buffer pool never holds a shard
//! latch across a miss fill and the log writer mutex never covers a
//! physical flush — the difference between "fast path stalls behind one
//! disk" and not. This lint makes the rule structural.
//!
//! Heuristic, deliberately simple and brace-scoped:
//!
//! * A **guard acquisition** is a `let` statement whose initializer ends
//!   in a no-argument `.lock()` / `.read()` / `.write()` / `try_*` /
//!   `.upgradable_read()` call. (`file.read(&mut buf)` has arguments and
//!   is not a guard; a temporary like `self.map.read().get(k)` dies at
//!   the statement's end and is never tracked.)
//! * The guard is **live** until its enclosing brace block closes or an
//!   explicit `drop(<guard>)` of its binding is seen.
//! * A **media call** is a method call of `read_page` / `read_page_seq` /
//!   `write_page` / `write_page_seq` / `flush` / `flush_to` /
//!   `flush_up_to` / `sync` / `sync_all` / `sync_data`, or any mention of
//!   `FileManager`.
//!
//! A media call while any guard is live is a finding. Leaf wrappers that
//! *are* the I/O serialization point (the file manager's own handle
//! mutex) take an explained `// tidy: allow(lock-across-io) -- …`.

use super::{next_code, prev_code};
use crate::lexer::TokKind;
use crate::report::Finding;
use crate::walk::FileCtx;

const GUARD_METHODS: &[&str] = &[
    "lock",
    "read",
    "write",
    "try_lock",
    "try_read",
    "try_write",
    "upgradable_read",
];

const IO_CALLS: &[&str] = &[
    "read_page",
    "read_page_seq",
    "read_pages",
    "write_page",
    "write_page_seq",
    "write_pages",
    "flush",
    "flush_to",
    "flush_up_to",
    "sync",
    "sync_all",
    "sync_data",
];

struct Guard {
    /// Binding name (`_` or unknown patterns track scope only).
    name: Option<String>,
    method: String,
    line: u32,
    /// Brace depth at the `let`; the guard dies when depth drops below.
    depth: usize,
}

pub fn check(ctx: &FileCtx, out: &mut Vec<Finding>) {
    let code: Vec<usize> = (0..ctx.tokens.len()).filter(|&i| ctx.is_code(i)).collect();
    let mut depth = 0usize;
    let mut guards: Vec<Guard> = Vec::new();
    let mut k = 0usize;
    while k < code.len() {
        let i = code[k];
        let text = ctx.text(i);
        match text {
            "{" => depth += 1,
            "}" => {
                depth = depth.saturating_sub(1);
                guards.retain(|g| g.depth <= depth);
            }
            "let" => {
                if let Some((name, method, line, stmt_end)) = guard_binding(ctx, &code, k) {
                    guards.push(Guard {
                        name,
                        method,
                        line,
                        depth,
                    });
                    k = stmt_end;
                    continue;
                }
            }
            "drop" => {
                // `drop(name)` explicitly ends a guard's life.
                if let Some(n1) = next_code(ctx, i) {
                    if ctx.text(n1) == "(" {
                        if let Some(n2) = next_code(ctx, n1) {
                            let name = ctx.text(n2).to_string();
                            if next_code(ctx, n2).is_some_and(|n3| ctx.text(n3) == ")") {
                                guards.retain(|g| g.name.as_deref() != Some(name.as_str()));
                            }
                        }
                    }
                }
            }
            "FileManager" if ctx.tokens[i].kind == TokKind::Ident => {
                if let Some(g) = guards.last() {
                    out.push(finding(ctx, ctx.tokens[i].line, "FileManager use", g));
                }
            }
            _ if ctx.tokens[i].kind == TokKind::Ident && IO_CALLS.contains(&text) => {
                let dotted = prev_code(ctx, i).is_some_and(|p| ctx.text(p) == ".");
                let called = next_code(ctx, i).is_some_and(|n| ctx.text(n) == "(");
                if dotted && called {
                    if let Some(g) = guards.last() {
                        out.push(finding(ctx, ctx.tokens[i].line, &format!("`.{text}()`"), g));
                    }
                }
            }
            _ => {}
        }
        k += 1;
    }
}

fn finding(ctx: &FileCtx, line: u32, what: &str, g: &Guard) -> Finding {
    let name = g.name.as_deref().unwrap_or("_");
    Finding::new(
        "lock-across-io",
        ctx,
        line,
        format!(
            "{what} while guard `{name}` (`.{}()` at line {}) is live — \
             release the lock before media I/O, or justify with \
             `// tidy: allow(lock-across-io) -- <why this lock must cover the I/O>`",
            g.method, g.line
        ),
    )
}

/// If the `let` statement starting at `code[k]` binds a lock guard,
/// return `(binding name, guard method, line, index in `code` one past
/// the statement's `;`)`.
fn guard_binding(
    ctx: &FileCtx,
    code: &[usize],
    k: usize,
) -> Option<(Option<String>, String, u32, usize)> {
    let let_tok = code[k];
    let line = ctx.tokens[let_tok].line;
    // Binding name: `let name` or `let mut name`; anything fancier
    // (tuples, refs) tracks scope without a name.
    let mut idx = k + 1;
    let mut name = None;
    if idx < code.len() && ctx.text(code[idx]) == "mut" {
        idx += 1;
    }
    if idx < code.len() && ctx.tokens[code[idx]].kind == TokKind::Ident {
        name = Some(ctx.text(code[idx]).to_string());
    }
    // Scan the statement to its terminating `;` (depth-0 relative to the
    // statement; initializers with blocks, e.g. match, are tracked).
    let mut j = k + 1;
    let mut nest = 0isize;
    let mut end = None;
    while j < code.len() {
        match ctx.text(code[j]) {
            "(" | "[" | "{" => nest += 1,
            ")" | "]" | "}" => {
                nest -= 1;
                if nest < 0 {
                    return None; // malformed / not a statement
                }
            }
            ";" if nest == 0 => {
                end = Some(j);
                break;
            }
            _ => {}
        }
        j += 1;
    }
    let end = end?;
    // Guard shape: the initializer *ends* with `. <guard-method> ( )`,
    // optionally `?`-propagated. A chained temporary
    // (`self.map.read().len()`) releases at the `;` and is not a guard.
    let mut e = end.checked_sub(1)?;
    if ctx.text(code[e]) == "?" {
        e = e.checked_sub(1)?;
    }
    if e < k + 4 || ctx.text(code[e]) != ")" || ctx.text(code[e - 1]) != "(" {
        return None;
    }
    let m = code[e - 2];
    let dotted = ctx.text(code[e - 3]) == ".";
    if dotted && ctx.tokens[m].kind == TokKind::Ident && GUARD_METHODS.contains(&ctx.text(m)) {
        Some((name, ctx.text(m).to_string(), line, end + 1))
    } else {
        None
    }
}
