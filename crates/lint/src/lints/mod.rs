//! The lint registry.
//!
//! Every lint is a pure function over lexed token streams — per-file
//! lints see one [`FileCtx`], global lints see the whole workspace (the
//! lock-order graph and the obs counter cross-check need every file).
//!
//! To add a lint:
//!
//! 1. write `fn check(ctx: &FileCtx, out: &mut Vec<Finding>)` in a new
//!    module here (or extend `run_global` for cross-file invariants);
//! 2. register its name + summary in [`ALL`] and call it from
//!    [`run_file`]/[`run_global`];
//! 3. add violating + allowed fixture snippets under `tests/fixtures/`
//!    and exact-count assertions in `tests/lint_fixtures.rs`;
//! 4. document it in the README lint catalog.

pub mod counter_drift;
pub mod hygiene;
pub mod lock_across_io;
pub mod lock_order;
pub mod no_panic;
pub mod unsafe_audit;

use crate::lexer::TokKind;
use crate::report::{Finding, LockOrderFact};
use crate::walk::FileCtx;

/// Name + one-line contract of every lint, as shown by `--list`.
pub const ALL: &[(&str, &str)] = &[
    (
        "no-panic",
        "library code never panics: no unwrap/expect/panic!/unreachable!/todo!/unimplemented! — corruption and I/O failure surface as typed errors",
    ),
    (
        "lock-across-io",
        "a lock/read/write guard binding must not live across a FileManager / read_page / write_page / flush / sync call",
    ),
    (
        "lock-order",
        "`tidy: lock-order(a < b)` acquisition facts must form a cycle-free global order",
    ),
    (
        "unsafe-audit",
        "every `unsafe` is immediately preceded by a `// SAFETY:` comment explaining why it is sound",
    ),
    (
        "wall-clock",
        "no std::time::Instant/SystemTime outside crates/obs and crates/bench — engine behaviour must not read the clock",
    ),
    (
        "output-hygiene",
        "no println!/eprintln!/print!/eprint!/dbg! in library crates — output goes through obs exposition",
    ),
    (
        "std-sync",
        "no std::sync::{Mutex,RwLock,Condvar} — the parking_lot shim is mandated (poison-free, upgradeable later)",
    ),
    (
        "counter-drift",
        "every EventKind variant appears in from_u64 and name(); every ObsInner histogram is exposed by MetricSource for Obs",
    ),
];

/// Run every per-file lint over one file.
pub fn run_file(ctx: &FileCtx, out: &mut Vec<Finding>) {
    no_panic::check(ctx, out);
    lock_across_io::check(ctx, out);
    unsafe_audit::check(ctx, out);
    hygiene::check(ctx, out);
}

/// Run every cross-file lint.
pub fn run_global(files: &[FileCtx], facts: &[LockOrderFact], out: &mut Vec<Finding>) {
    lock_order::check(facts, out);
    counter_drift::check(files, out);
}

/// Index of the previous non-comment token before `i`, if any.
pub(crate) fn prev_code(ctx: &FileCtx, i: usize) -> Option<usize> {
    (0..i).rev().find(|&j| {
        !matches!(
            ctx.tokens[j].kind,
            TokKind::LineComment | TokKind::BlockComment
        )
    })
}

/// Index of the next non-comment token after `i`, if any.
pub(crate) fn next_code(ctx: &FileCtx, i: usize) -> Option<usize> {
    (i + 1..ctx.tokens.len()).find(|&j| {
        !matches!(
            ctx.tokens[j].kind,
            TokKind::LineComment | TokKind::BlockComment
        )
    })
}
