//! Workspace file discovery and per-file analysis context.
//!
//! The walker finds every `.rs` file that is *shipped engine code*:
//!
//! * `src/` of every workspace crate plus the root facade crate;
//! * excluding `crates/shims/` (vendored API-compatible stand-ins — not
//!   our code to police), `crates/lint/` (the tool itself), and every
//!   `tests/`, `benches/`, `examples/`, `fixtures/` directory;
//! * excluding, token-by-token, items under `#[cfg(test)]` / `#[test]`
//!   attributes — test code may unwrap freely.
//!
//! Crates are classified [`CrateKind::Library`] or [`CrateKind::Tool`]:
//! tool crates (`bench`) exist to print and to time, so the output- and
//! wall-clock-hygiene lints do not apply there, while the memory-safety
//! and locking lints still do.

use std::fs;
use std::path::{Path, PathBuf};

use crate::lexer::{lex, TokKind, Token};

/// How strictly a crate is policed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CrateKind {
    /// Engine code: every lint applies.
    Library,
    /// Drivers/benches: printing and wall-clock timing are their job;
    /// panic-freedom is not demanded of a CLI's top level.
    Tool,
}

/// One analyzed file: source, token stream, and derived masks.
pub struct FileCtx {
    /// Workspace-relative path with `/` separators (stable across OSes).
    pub path: String,
    /// Crate name as in `crates/<name>/…` (the root facade is `rewind`).
    pub crate_name: String,
    pub kind: CrateKind,
    pub source: String,
    /// Every token, comments included.
    pub tokens: Vec<Token>,
    /// `test_mask[i]` — token `i` is inside a `#[cfg(test)]`/`#[test]`
    /// item and exempt from the code lints.
    pub test_mask: Vec<bool>,
}

impl FileCtx {
    /// Build a context from source text (public so fixture tests can lint
    /// in-memory snippets without touching the filesystem).
    pub fn from_source(path: &str, crate_name: &str, kind: CrateKind, source: String) -> FileCtx {
        let tokens = lex(&source);
        let test_mask = compute_test_mask(&source, &tokens);
        FileCtx {
            path: path.to_string(),
            crate_name: crate_name.to_string(),
            kind,
            source,
            tokens,
            test_mask,
        }
    }

    /// Token text helper.
    pub fn text(&self, i: usize) -> &str {
        self.tokens[i].text(&self.source)
    }

    /// Is token `i` live, non-test code (not a comment, not test-masked)?
    pub fn is_code(&self, i: usize) -> bool {
        !self.test_mask[i]
            && !matches!(
                self.tokens[i].kind,
                TokKind::LineComment | TokKind::BlockComment
            )
    }
}

/// Mark every token covered by a `#[cfg(test)]` or `#[test]` attribute's
/// item. The scan is purely token-driven: on such an attribute, skip any
/// further attributes, then mask through the item's body — either the
/// matching `{ … }` block or a terminating `;`.
fn compute_test_mask(src: &str, tokens: &[Token]) -> Vec<bool> {
    let mut mask = vec![false; tokens.len()];
    let mut i = 0;
    while i < tokens.len() {
        if let Some(after_attr) = test_attribute_end(src, tokens, i) {
            let item_end = skip_item(src, tokens, after_attr);
            for m in mask.iter_mut().take(item_end).skip(i) {
                *m = true;
            }
            i = item_end;
        } else {
            i += 1;
        }
    }
    mask
}

/// If tokens at `i` open an attribute `#[…]` whose contents mention a
/// bare `test` (covers `#[test]`, `#[cfg(test)]`, `#[cfg(any(test, …))]`,
/// `#[cfg(all(test, …))]`), return the index one past the closing `]`.
fn test_attribute_end(src: &str, tokens: &[Token], i: usize) -> Option<usize> {
    if tokens[i].kind != TokKind::Punct || tokens[i].text(src) != "#" {
        return None;
    }
    let open = i + 1;
    if open >= tokens.len() || tokens[open].text(src) != "[" {
        return None;
    }
    let mut depth = 0usize;
    let mut saw_test = false;
    let mut j = open;
    while j < tokens.len() {
        let t = tokens[j].text(src);
        match t {
            "[" => depth += 1,
            "]" => {
                depth -= 1;
                if depth == 0 {
                    return if saw_test { Some(j + 1) } else { None };
                }
            }
            "test" if tokens[j].kind == TokKind::Ident => saw_test = true,
            _ => {}
        }
        j += 1;
    }
    None
}

/// From the first token after an attribute, skip the item it covers:
/// further attributes, then either a braced body or a `;`-terminated
/// declaration. Returns the index one past the item.
fn skip_item(src: &str, tokens: &[Token], mut i: usize) -> usize {
    // Chained attributes (`#[cfg(test)] #[allow(…)] mod t { … }`).
    while i + 1 < tokens.len() && tokens[i].text(src) == "#" && tokens[i + 1].text(src) == "[" {
        let mut depth = 0usize;
        i += 1;
        while i < tokens.len() {
            match tokens[i].text(src) {
                "[" => depth += 1,
                "]" => {
                    depth -= 1;
                    if depth == 0 {
                        i += 1;
                        break;
                    }
                }
                _ => {}
            }
            i += 1;
        }
    }
    // Scan to the item body: the first `{` at nesting level zero of
    // parens/brackets (fn params, generics hold no braces), or a `;`.
    let mut paren = 0isize;
    while i < tokens.len() {
        match tokens[i].text(src) {
            "(" | "[" => paren += 1,
            ")" | "]" => paren -= 1,
            ";" if paren == 0 => return i + 1,
            "{" if paren == 0 => {
                // Consume the balanced brace block.
                let mut depth = 0usize;
                while i < tokens.len() {
                    match tokens[i].text(src) {
                        "{" => depth += 1,
                        "}" => {
                            depth -= 1;
                            if depth == 0 {
                                return i + 1;
                            }
                        }
                        _ => {}
                    }
                    i += 1;
                }
                return i;
            }
            _ => {}
        }
        i += 1;
    }
    i
}

/// Directories never descended into, anywhere in the tree.
const SKIP_DIRS: &[&str] = &[
    "target", "tests", "benches", "examples", "fixtures", ".git", ".github",
];

/// Crate directories excluded wholesale.
const SKIP_CRATES: &[&str] = &["shims", "lint"];

/// Crates classified as tools rather than engine libraries.
const TOOL_CRATES: &[&str] = &["bench"];

/// Discover and analyze every policed `.rs` file under `root` (the
/// workspace root). Deterministic order (sorted paths).
pub fn walk_workspace(root: &Path) -> std::io::Result<Vec<FileCtx>> {
    let mut paths: Vec<PathBuf> = Vec::new();
    collect_rs(&root.join("src"), &mut paths)?;
    let crates_dir = root.join("crates");
    if crates_dir.is_dir() {
        for entry in fs::read_dir(&crates_dir)? {
            let entry = entry?;
            let name = entry.file_name();
            let name = name.to_string_lossy().to_string();
            if SKIP_CRATES.contains(&name.as_str()) {
                continue;
            }
            collect_rs(&entry.path().join("src"), &mut paths)?;
        }
    }
    paths.sort();
    let mut out = Vec::with_capacity(paths.len());
    for p in paths {
        let rel = p
            .strip_prefix(root)
            .unwrap_or(&p)
            .to_string_lossy()
            .replace('\\', "/");
        let crate_name = match rel.strip_prefix("crates/") {
            Some(rest) => rest.split('/').next().unwrap_or("").to_string(),
            None => "rewind".to_string(),
        };
        let kind = if TOOL_CRATES.contains(&crate_name.as_str()) {
            CrateKind::Tool
        } else {
            CrateKind::Library
        };
        let source = fs::read_to_string(&p)?;
        out.push(FileCtx::from_source(&rel, &crate_name, kind, source));
    }
    Ok(out)
}

fn collect_rs(dir: &Path, out: &mut Vec<PathBuf>) -> std::io::Result<()> {
    if !dir.is_dir() {
        return Ok(());
    }
    for entry in fs::read_dir(dir)? {
        let entry = entry?;
        let path = entry.path();
        let name = entry.file_name().to_string_lossy().to_string();
        if path.is_dir() {
            if !SKIP_DIRS.contains(&name.as_str()) {
                collect_rs(&path, out)?;
            }
        } else if name.ends_with(".rs") {
            out.push(path);
        }
    }
    Ok(())
}

/// Locate the workspace root: walk up from `start` to the first directory
/// whose `Cargo.toml` declares `[workspace]`.
pub fn find_workspace_root(start: &Path) -> Option<PathBuf> {
    let mut dir = Some(start.to_path_buf());
    while let Some(d) = dir {
        let manifest = d.join("Cargo.toml");
        if let Ok(text) = fs::read_to_string(&manifest) {
            if text.contains("[workspace]") {
                return Some(d);
            }
        }
        dir = d.parent().map(Path::to_path_buf);
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ctx(src: &str) -> FileCtx {
        FileCtx::from_source("x.rs", "x", CrateKind::Library, src.to_string())
    }

    #[test]
    fn cfg_test_mod_is_masked() {
        let src =
            "fn live() {}\n#[cfg(test)]\nmod tests {\n  fn t() { x.unwrap(); }\n}\nfn live2() {}";
        let c = ctx(src);
        let live: Vec<&str> = (0..c.tokens.len())
            .filter(|&i| c.is_code(i) && c.tokens[i].kind == TokKind::Ident)
            .map(|i| c.text(i))
            .collect();
        assert!(live.contains(&"live"));
        assert!(live.contains(&"live2"));
        assert!(!live.contains(&"unwrap"), "{live:?}");
    }

    #[test]
    fn test_attribute_fn_is_masked() {
        let src = "#[test]\nfn t() { panic!(); }\nfn real() {}";
        let c = ctx(src);
        let live: Vec<&str> = (0..c.tokens.len())
            .filter(|&i| c.is_code(i) && c.tokens[i].kind == TokKind::Ident)
            .map(|i| c.text(i))
            .collect();
        assert!(!live.contains(&"panic"));
        assert!(live.contains(&"real"));
    }

    #[test]
    fn cfg_any_test_and_chained_attrs_are_masked() {
        let src = "#[cfg(any(test, feature = \"x\"))]\n#[allow(dead_code)]\nfn helper() { y.unwrap(); }\nfn live() {}";
        let c = ctx(src);
        let live: Vec<&str> = (0..c.tokens.len())
            .filter(|&i| c.is_code(i) && c.tokens[i].kind == TokKind::Ident)
            .map(|i| c.text(i))
            .collect();
        assert!(!live.contains(&"unwrap"), "{live:?}");
        assert!(live.contains(&"live"));
    }

    #[test]
    fn non_test_cfg_is_not_masked() {
        let src = "#[cfg(feature = \"enabled\")]\nfn live() { real(); }";
        let c = ctx(src);
        let live: Vec<&str> = (0..c.tokens.len())
            .filter(|&i| c.is_code(i) && c.tokens[i].kind == TokKind::Ident)
            .map(|i| c.text(i))
            .collect();
        assert!(live.contains(&"real"));
    }

    #[test]
    fn semicolon_terminated_test_item_is_masked() {
        let src = "#[cfg(test)]\nuse std::collections::HashMap;\nfn live() {}";
        let c = ctx(src);
        let live: Vec<&str> = (0..c.tokens.len())
            .filter(|&i| c.is_code(i) && c.tokens[i].kind == TokKind::Ident)
            .map(|i| c.text(i))
            .collect();
        assert!(!live.contains(&"HashMap"));
        assert!(live.contains(&"live"));
    }
}
