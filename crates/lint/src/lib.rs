//! # rewind-tidy (`rewind-lint`)
//!
//! A zero-dependency static pass that enforces the ROADMAP's "do not
//! regress" invariants at `cargo run` speed, modeled on rustc's own
//! `tidy` tool. The tests-enforce-it model breaks down exactly where
//! this engine is headed (concurrent recovery, lock-heavy multicore
//! paths — see PAPERS.md): a latent `unwrap()` or a latch held across a
//! page read only fails when a test happens to schedule the bad
//! interleaving. A token-level pass fails it on every compile.
//!
//! Pipeline: [`walk`] discovers engine sources and masks test code →
//! [`lexer`] tokenizes (comments kept, literal contents opaque) →
//! [`lints`] run per-file and globally → [`report`] applies
//! `// tidy: allow` escapes and renders text or JSON.
//!
//! See the README "Static analysis" section for the lint catalog and the
//! escape-comment syntax.

pub mod lexer;
pub mod lints;
pub mod report;
pub mod walk;

use report::{apply_allows, parse_directives, Allow, Finding};
use walk::FileCtx;

/// Everything one pass produced.
pub struct RunResult {
    /// Findings that survived the allow pass (non-empty ⇒ exit 1).
    pub findings: Vec<Finding>,
    /// Every well-formed allow in the tree, used or not (reported so the
    /// escape count is visible in review and in the JSON artifact).
    pub allows: Vec<Allow>,
    pub files_scanned: usize,
}

/// Run the full pass over pre-built file contexts (the workspace walk in
/// production; hand-built snippets in fixture tests).
pub fn run(files: &[FileCtx]) -> RunResult {
    let mut raw: Vec<Finding> = Vec::new();
    let mut meta: Vec<Finding> = Vec::new();
    let mut allows: Vec<Allow> = Vec::new();
    let mut facts = Vec::new();
    for ctx in files {
        let directives = parse_directives(ctx);
        allows.extend(directives.allows);
        facts.extend(directives.lock_orders);
        meta.extend(directives.malformed);
        lints::run_file(ctx, &mut raw);
    }
    lints::run_global(files, &facts, &mut raw);

    let mut findings = apply_allows(raw, &mut allows);
    // Stale escapes are findings too — an allow that suppresses nothing
    // documents a danger that no longer exists.
    for a in allows.iter().filter(|a| !a.used) {
        meta.push(Finding {
            lint: "unused-allow",
            path: a.path.clone(),
            line: a.line,
            message: format!(
                "`tidy: allow({})` suppresses nothing — remove it (reason was: {})",
                a.lint, a.reason
            ),
        });
    }
    findings.extend(meta);
    findings.sort_by(|a, b| (&a.path, a.line, a.lint).cmp(&(&b.path, b.line, b.lint)));
    RunResult {
        findings,
        allows,
        files_scanned: files.len(),
    }
}
