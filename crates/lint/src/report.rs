//! Findings, `// tidy:` directives, and report rendering.
//!
//! ## Escape-comment syntax
//!
//! A lint finding is suppressed by an *explained* allow on the same line
//! or on the line directly above:
//!
//! ```text
//! // tidy: allow(no-panic) -- slice length proven by the loop bound above
//! let b = buf[..4].try_into().unwrap();
//! ```
//!
//! The reason after ` -- ` is mandatory: an allow without one is itself a
//! finding (`malformed-allow`), and an allow that suppresses nothing is an
//! `unused-allow` finding — stale escapes rot into lies, so the tool
//! refuses to carry them. Both meta-findings are unsuppressible.
//!
//! Lock-order facts use the same comment channel:
//!
//! ```text
//! // tidy: lock-order(pool_shard < side_file) -- shard latch taken first on the miss path
//! ```

use std::fmt::Write as _;

use crate::lexer::TokKind;
use crate::walk::FileCtx;

/// One lint violation (or meta-violation) at a source location.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Finding {
    /// Lint name as listed in the registry (`no-panic`, `lock-across-io`…).
    pub lint: &'static str,
    /// Workspace-relative path.
    pub path: String,
    /// 1-based line.
    pub line: u32,
    /// Human message: what and why.
    pub message: String,
}

impl Finding {
    pub fn new(lint: &'static str, ctx: &FileCtx, line: u32, message: String) -> Finding {
        Finding {
            lint,
            path: ctx.path.clone(),
            line,
            message,
        }
    }
}

/// A parsed `// tidy: allow(<lint>) -- <reason>` directive.
#[derive(Debug, Clone)]
pub struct Allow {
    pub lint: String,
    pub reason: String,
    pub path: String,
    /// Line of the comment itself.
    pub line: u32,
    /// Set when a finding was suppressed by this allow.
    pub used: bool,
}

/// A parsed `// tidy: lock-order(<a> < <b>)` fact (a is acquired before b).
#[derive(Debug, Clone)]
pub struct LockOrderFact {
    pub first: String,
    pub then: String,
    pub path: String,
    pub line: u32,
}

/// Every `tidy:` directive found in one file.
#[derive(Debug, Default)]
pub struct Directives {
    pub allows: Vec<Allow>,
    pub lock_orders: Vec<LockOrderFact>,
    /// Malformed directives (missing reason, unparseable body).
    pub malformed: Vec<Finding>,
}

/// Scan a file's comments for `tidy:` directives. Directives are honoured
/// in test code too (an allow above a masked line is simply never used).
pub fn parse_directives(ctx: &FileCtx) -> Directives {
    let mut out = Directives::default();
    for tok in &ctx.tokens {
        if !matches!(tok.kind, TokKind::LineComment | TokKind::BlockComment) {
            continue;
        }
        let text = tok.text(&ctx.source);
        let Some(at) = text.find("tidy:") else {
            continue;
        };
        let body = text[at + "tidy:".len()..].trim();
        if let Some(rest) = body.strip_prefix("allow(") {
            let Some(close) = rest.find(')') else {
                out.malformed.push(Finding::new(
                    "malformed-allow",
                    ctx,
                    tok.line,
                    "unclosed `tidy: allow(` directive".to_string(),
                ));
                continue;
            };
            let lint = rest[..close].trim().to_string();
            let tail = rest[close + 1..].trim();
            let reason = tail.strip_prefix("--").map(str::trim).unwrap_or("");
            if lint.is_empty() || reason.is_empty() {
                out.malformed.push(Finding::new(
                    "malformed-allow",
                    ctx,
                    tok.line,
                    format!(
                        "`tidy: allow({lint})` needs a reason: \
                         `// tidy: allow(<lint>) -- <why this is sound>`"
                    ),
                ));
                continue;
            }
            out.allows.push(Allow {
                lint,
                reason: reason.to_string(),
                path: ctx.path.clone(),
                line: tok.line,
                used: false,
            });
        } else if let Some(rest) = body.strip_prefix("lock-order(") {
            let parsed = rest.find(')').and_then(|close| {
                let inner = &rest[..close];
                let (a, b) = inner.split_once('<')?;
                let (a, b) = (a.trim(), b.trim());
                if a.is_empty() || b.is_empty() || b.contains('<') {
                    None
                } else {
                    Some((a.to_string(), b.to_string()))
                }
            });
            match parsed {
                Some((first, then)) => out.lock_orders.push(LockOrderFact {
                    first,
                    then,
                    path: ctx.path.clone(),
                    line: tok.line,
                }),
                None => out.malformed.push(Finding::new(
                    "malformed-allow",
                    ctx,
                    tok.line,
                    "unparseable `tidy: lock-order` — expected \
                     `// tidy: lock-order(<first> < <second>)`"
                        .to_string(),
                )),
            }
        } else {
            out.malformed.push(Finding::new(
                "malformed-allow",
                ctx,
                tok.line,
                format!("unknown `tidy:` directive: `{body}`"),
            ));
        }
    }
    out
}

/// Apply allows to raw findings: a finding is suppressed by a same-lint
/// allow in the same file on its line or the line above. Returns surviving
/// findings; marks used allows.
pub fn apply_allows(findings: Vec<Finding>, allows: &mut [Allow]) -> Vec<Finding> {
    findings
        .into_iter()
        .filter(|f| {
            for a in allows.iter_mut() {
                if a.path == f.path
                    && a.lint == f.lint
                    && (a.line == f.line || a.line + 1 == f.line)
                {
                    a.used = true;
                    return false;
                }
            }
            true
        })
        .collect()
}

fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

/// Machine-readable report (hand-rolled JSON — the workspace carries no
/// serde; same policy as `MetricsSnapshot::to_json`).
pub fn to_json(findings: &[Finding], allows: &[Allow], files_scanned: usize) -> String {
    let mut out = String::from("{\n  \"findings\": [");
    for (i, f) in findings.iter().enumerate() {
        let sep = if i == 0 { "" } else { "," };
        let _ = write!(
            out,
            "{sep}\n    {{\"lint\": \"{}\", \"file\": \"{}\", \"line\": {}, \"message\": \"{}\"}}",
            f.lint,
            json_escape(&f.path),
            f.line,
            json_escape(&f.message)
        );
    }
    out.push_str("\n  ],\n  \"allows\": [");
    for (i, a) in allows.iter().enumerate() {
        let sep = if i == 0 { "" } else { "," };
        let _ = write!(
            out,
            "{sep}\n    {{\"lint\": \"{}\", \"file\": \"{}\", \"line\": {}, \"reason\": \"{}\"}}",
            json_escape(&a.lint),
            json_escape(&a.path),
            a.line,
            json_escape(&a.reason)
        );
    }
    let _ = write!(
        out,
        "\n  ],\n  \"files_scanned\": {files_scanned},\n  \"finding_count\": {},\n  \"allow_count\": {}\n}}\n",
        findings.len(),
        allows.len()
    );
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::walk::CrateKind;

    fn ctx(src: &str) -> FileCtx {
        FileCtx::from_source("f.rs", "f", CrateKind::Library, src.to_string())
    }

    #[test]
    fn allow_parses_with_reason() {
        let c = ctx("// tidy: allow(no-panic) -- length checked above\nx.unwrap();");
        let d = parse_directives(&c);
        assert_eq!(d.allows.len(), 1);
        assert_eq!(d.allows[0].lint, "no-panic");
        assert_eq!(d.allows[0].reason, "length checked above");
        assert!(d.malformed.is_empty());
    }

    #[test]
    fn allow_without_reason_is_malformed() {
        let c = ctx("// tidy: allow(no-panic)\nx.unwrap();");
        let d = parse_directives(&c);
        assert!(d.allows.is_empty());
        assert_eq!(d.malformed.len(), 1);
        assert_eq!(d.malformed[0].lint, "malformed-allow");
    }

    #[test]
    fn lock_order_parses() {
        let c = ctx("// tidy: lock-order(writer < flusher) -- append before flush\n");
        let d = parse_directives(&c);
        assert_eq!(d.lock_orders.len(), 1);
        assert_eq!(d.lock_orders[0].first, "writer");
        assert_eq!(d.lock_orders[0].then, "flusher");
    }

    #[test]
    fn unknown_directive_is_malformed() {
        let c = ctx("// tidy: allwo(no-panic) -- typo\n");
        let d = parse_directives(&c);
        assert_eq!(d.malformed.len(), 1);
    }

    #[test]
    fn allows_suppress_same_and_next_line_only() {
        let c = ctx("fn f() {}\n");
        let mut allows = vec![Allow {
            lint: "no-panic".into(),
            reason: "r".into(),
            path: "f.rs".into(),
            line: 10,
            used: false,
        }];
        let findings = vec![
            Finding {
                lint: "no-panic",
                path: "f.rs".into(),
                line: 10,
                message: String::new(),
            },
            Finding {
                lint: "no-panic",
                path: "f.rs".into(),
                line: 11,
                message: String::new(),
            },
            Finding {
                lint: "no-panic",
                path: "f.rs".into(),
                line: 12,
                message: String::new(),
            },
            Finding {
                lint: "lock-across-io",
                path: "f.rs".into(),
                line: 11,
                message: String::new(),
            },
        ];
        let left = apply_allows(findings, &mut allows);
        assert_eq!(left.len(), 2);
        assert!(left.iter().any(|f| f.line == 12));
        assert!(left.iter().any(|f| f.lint == "lock-across-io"));
        assert!(allows[0].used);
        let _ = ctx("");
        let _ = &c;
    }

    #[test]
    fn json_report_escapes() {
        let f = vec![Finding {
            lint: "no-panic",
            path: "a\"b.rs".into(),
            line: 1,
            message: "quote \" and\nnewline".into(),
        }];
        let j = to_json(&f, &[], 3);
        assert!(j.contains("\\\""));
        assert!(j.contains("\\n"));
        assert!(j.contains("\"files_scanned\": 3"));
    }
}
