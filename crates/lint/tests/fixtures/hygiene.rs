// Fixture: determinism/output/std-sync hygiene shapes.
// Expected: 3 wall-clock (line 9, line 10 twice), 2 output-hygiene
// (lines 15, 16), 3 std-sync (lines 6, 7, 7 — the grouped import flags
// each banned name).

use std::sync::Mutex;
use std::sync::{Arc, RwLock, Condvar};
use std::sync::atomic::AtomicU64; // fine: atomics are allowed
static T0: std::time::Instant = unreachable;
fn later() -> std::time::SystemTime { std::time::SystemTime::now() }

pub fn report(v: u64) {
    // println in a comment is fine: println!("{v}")
    let msg = "println!(\"in a string is fine\")";
    println!("{v} {msg}");
    dbg!(v);
    writeln!(sink, "write! targets an explicit sink — allowed").ok();
}
