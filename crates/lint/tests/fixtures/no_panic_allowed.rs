// Fixture: escapes and exemptions the no-panic lint must honour.
// Expected: 0 findings, 2 used allows.

pub fn explained(buf: &[u8]) -> u32 {
    // tidy: allow(no-panic) -- the slice is length-checked two lines up
    let word = buf[..4].try_into().unwrap();
    let n = u32::from_le_bytes(word);
    n.checked_add(1).unwrap() // tidy: allow(no-panic) -- n came from 4 bytes, cannot be MAX
}

pub fn not_method_shaped(v: Option<u32>) -> u32 {
    // `unwrap_or` / `expect_err`-style idents must not match.
    v.unwrap_or(0)
}

#[cfg(test)]
mod tests {
    #[test]
    fn test_code_may_panic() {
        let v: Option<u32> = None;
        v.unwrap();
        panic!("tests panic freely");
    }
}
