// Fixture: every panic-shaped construct in library code, one per line.
// Expected: exactly 6 `no-panic` findings (lines 5, 8, 11, 14, 17, 20).

pub fn f(v: Option<u32>) -> u32 {
    let a = v.unwrap();
    let b = std::env::var("X")
        .ok()
        .expect("must be set");
    if a == 0 {
        panic!("zero");
    }
    match b.len() {
        0 => unreachable!(),
        1 => a,
        _ => {
            todo!()
        }
    }
    ;
    unimplemented!()
}
