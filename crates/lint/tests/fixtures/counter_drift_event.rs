// Fixture standing in for crates/obs/src/event.rs with one variant
// (`ScanBatch`) missing from `from_u64` and another (`LogFlush`) missing
// from `name` — expected: 2 counter-drift findings.

#[repr(u8)]
pub enum EventKind {
    /// Doc comments and attributes must not read as variants.
    CommitBegin = 1,
    #[allow(dead_code)]
    LogFlush = 5,
    ScanBatch = 13,
}

impl EventKind {
    fn from_u64(v: u64) -> Option<EventKind> {
        use EventKind::*;
        Some(match v {
            1 => CommitBegin,
            5 => LogFlush,
            _ => return None,
        })
    }

    pub fn name(self) -> &'static str {
        use EventKind::*;
        match self {
            CommitBegin => "commit_begin",
            ScanBatch => "scan_batch",
        }
    }
}
