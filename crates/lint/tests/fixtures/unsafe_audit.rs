// Fixture: unsafe with and without SAFETY proof.
// Expected: exactly 2 `unsafe-audit` findings (lines 5 and 18).

pub fn missing_proof(ptr: *const u8, len: usize) -> &'static [u8] {
    unsafe { std::slice::from_raw_parts(ptr, len) }
}

pub fn with_proof(ptr: *const u8, len: usize) -> &'static [u8] {
    // SAFETY: caller contract guarantees `ptr` is valid for `len` bytes
    // and outlives 'static per the pool's leak-on-shutdown design.
    unsafe { std::slice::from_raw_parts(ptr, len) }
}

/* SAFETY: block-comment proofs count too — zeroed is a valid bit
   pattern for this POD struct. */
unsafe fn block_comment_proof() {}

unsafe impl Send for Thing {}

#[cfg(test)]
mod tests {
    #[test]
    fn test_unsafe_is_exempt() {
        unsafe { core::hint::unreachable_unchecked() }
    }
}
