// Fixture: panic-shaped *text* hiding in literals and comments.
// Expected: 0 findings from every lint.

pub fn strings() -> Vec<String> {
    vec![
        "x.unwrap() and panic!(now)".to_string(),
        r#"raw: y.expect("msg") // std::sync::Mutex"#.to_string(),
        r##"hash-raw: "quoted" z.unwrap() println!("hi")"##.to_string(),
        String::from_utf8_lossy(b"byte string .unwrap()").to_string(),
        '\u{41}'.to_string(),
        "multi
         line .expect(with) std::time::Instant inside".to_string(),
    ]
}

/* block comment: a.unwrap()
   /* nested block: panic!("still a comment") */
   still outer: std::sync::RwLock eprintln!("x") */
pub fn after_comments(c: char) -> bool {
    // line comment: b.expect("nope") unreachable!()
    c == '"' || c == '\\'
}
