// Fixture: guard-across-I/O shapes.
// Expected: exactly 2 `lock-across-io` findings (lines 9 and 31).

pub fn bad_read_under_lock(&self) -> Result<Page> {
    let shard = self.shards[idx].lock();
    if let Some(frame) = shard.map.get(&pid) {
        return Ok(frame.page.clone());
    }
    let page = self.file.read_page(pid)?; // finding: `shard` still live
    Ok(page)
}

pub fn good_release_before_io(&self) -> Result<Page> {
    let shard = self.shards[idx].lock();
    if let Some(frame) = shard.map.get(&pid) {
        return Ok(frame.page.clone());
    }
    drop(shard);
    let page = self.file.read_page(pid)?; // ok: guard explicitly dropped
    Ok(page)
}

pub fn good_scoped_guard(&self) -> Result<()> {
    {
        let stats = self.stats.write();
        stats.misses += 1;
    }
    self.file.write_page(pid, &page)?; // ok: guard scope closed
    let n = self.reader.read(&mut buf)?; // ok: has arguments — not a guard
    let w = self.inner.write();
    self.log.flush_to(lsn); // finding: `w` live
    Ok(())
}

pub fn good_temporary(&self) -> u64 {
    let n = self.map.read().len(); // temporary guard dies at `;`
    self.file.sync().ok();
    n
}
