// Fixture: guard-across-I/O shapes.
// Expected: exactly 4 `lock-across-io` findings (lines 9, 31, 43, 50).

pub fn bad_read_under_lock(&self) -> Result<Page> {
    let shard = self.shards[idx].lock();
    if let Some(frame) = shard.map.get(&pid) {
        return Ok(frame.page.clone());
    }
    let page = self.file.read_page(pid)?; // finding: `shard` still live
    Ok(page)
}

pub fn good_release_before_io(&self) -> Result<Page> {
    let shard = self.shards[idx].lock();
    if let Some(frame) = shard.map.get(&pid) {
        return Ok(frame.page.clone());
    }
    drop(shard);
    let page = self.file.read_page(pid)?; // ok: guard explicitly dropped
    Ok(page)
}

pub fn good_scoped_guard(&self) -> Result<()> {
    {
        let stats = self.stats.write();
        stats.misses += 1;
    }
    self.file.write_page(pid, &page)?; // ok: guard scope closed
    let n = self.reader.read(&mut buf)?; // ok: has arguments — not a guard
    let w = self.inner.write();
    self.log.flush_to(lsn); // finding: `w` live
    Ok(())
}

pub fn good_temporary(&self) -> u64 {
    let n = self.map.read().len(); // temporary guard dies at `;`
    self.file.sync().ok();
    n
}

pub fn bad_vectored_read_under_lock(&self) -> Result<Vec<Page>> {
    let st = self.state.lock();
    let results = self.backend.read_pages(&st.pids); // finding: `st` live
    Ok(results)
}

pub fn bad_batched_write_under_lock(&self) -> Result<()> {
    let batch = collect_batch();
    let g = self.gate.write();
    self.backend.write_pages(&batch); // finding: `g` live
    Ok(())
}

pub fn good_vectored_after_release(&self) -> Result<()> {
    let batch = {
        let st = self.state.lock();
        st.batch.clone()
    };
    self.backend.write_pages(&batch)?; // ok: guard scope closed
    Ok(())
}
