// Fixture standing in for crates/obs/src/lib.rs with one histogram field
// (`scan_batch`) never exposed by `impl MetricSource for Obs` —
// expected: 1 counter-drift finding.

struct ObsInner {
    ring: EventRing,
    commit_latency: Histogram,
    flush_stall: Histogram,
    scan_batch: Histogram,
}

impl MetricSource for Obs {
    fn collect(&self, out: &mut MetricsSnapshot) {
        out.counter("obs_enabled", self.is_enabled() as u64);
        out.histogram("commit_latency_us", self.commit_latency());
        out.histogram("flush_stall_us", self.flush_stall());
    }
}
