//! Fixture tests: run the full tidy pipeline over minimal violating and
//! allowlisted snippets, asserting exact finding counts and lines — the
//! lint tool is itself CI-gated code and gets the same rigour as the
//! engine.

use rewind_lint::report::Finding;
use rewind_lint::run;
use rewind_lint::walk::{CrateKind, FileCtx};

fn fixture(name: &str) -> String {
    let path = format!("{}/tests/fixtures/{name}", env!("CARGO_MANIFEST_DIR"));
    match std::fs::read_to_string(&path) {
        Ok(s) => s,
        Err(e) => panic!("fixture {path}: {e}"),
    }
}

/// Lint one fixture as a library file; return surviving findings + allow
/// count.
fn lint_fixture(name: &str) -> (Vec<Finding>, usize) {
    lint_as(name, &format!("crates/fixture/src/{name}"), "fixture")
}

fn lint_as(name: &str, path: &str, crate_name: &str) -> (Vec<Finding>, usize) {
    let ctx = FileCtx::from_source(path, crate_name, CrateKind::Library, fixture(name));
    let result = run(std::slice::from_ref(&ctx));
    (result.findings, result.allows.len())
}

fn lines_of(findings: &[Finding], lint: &str) -> Vec<u32> {
    findings
        .iter()
        .filter(|f| f.lint == lint)
        .map(|f| f.line)
        .collect()
}

#[test]
fn no_panic_flags_every_shape_with_exact_lines() {
    let (findings, _) = lint_fixture("no_panic_violations.rs");
    assert_eq!(
        lines_of(&findings, "no-panic"),
        vec![5, 8, 10, 13, 16, 20],
        "{findings:#?}"
    );
    assert_eq!(findings.len(), 6, "only no-panic findings expected");
}

#[test]
fn no_panic_honours_allows_and_test_code() {
    let (findings, allows) = lint_fixture("no_panic_allowed.rs");
    assert_eq!(findings, vec![], "{findings:#?}");
    assert_eq!(allows, 2);
}

#[test]
fn tool_crates_are_exempt_from_panic_and_output_lints() {
    let src = fixture("no_panic_violations.rs");
    let ctx = FileCtx::from_source("crates/bench/src/bin/x.rs", "bench", CrateKind::Tool, src);
    let result = run(std::slice::from_ref(&ctx));
    assert_eq!(result.findings, vec![], "{:#?}", result.findings);
}

#[test]
fn lexer_never_false_positives_inside_literals_or_comments() {
    let (findings, allows) = lint_fixture("lexer_no_false_positives.rs");
    assert_eq!(findings, vec![], "{findings:#?}");
    assert_eq!(allows, 0);
}

#[test]
fn lock_across_io_exact_findings() {
    let (findings, _) = lint_fixture("lock_across_io.rs");
    assert_eq!(
        lines_of(&findings, "lock-across-io"),
        vec![9, 31, 43, 50],
        "{findings:#?}"
    );
    assert_eq!(findings.len(), 4);
}

#[test]
fn unsafe_audit_exact_findings() {
    let (findings, _) = lint_fixture("unsafe_audit.rs");
    assert_eq!(
        lines_of(&findings, "unsafe-audit"),
        vec![5, 18],
        "{findings:#?}"
    );
    assert_eq!(findings.len(), 2);
}

#[test]
fn hygiene_exact_findings() {
    let (findings, _) = lint_fixture("hygiene.rs");
    assert_eq!(
        lines_of(&findings, "wall-clock"),
        vec![9, 10, 10],
        "{findings:#?}"
    );
    assert_eq!(
        lines_of(&findings, "output-hygiene"),
        vec![15, 16],
        "{findings:#?}"
    );
    assert_eq!(
        lines_of(&findings, "std-sync"),
        vec![6, 7, 7],
        "{findings:#?}"
    );
    assert_eq!(findings.len(), 8);
}

#[test]
fn counter_drift_catches_missing_decode_name_and_exposition() {
    let event = FileCtx::from_source(
        "crates/obs/src/event.rs",
        "obs",
        CrateKind::Library,
        fixture("counter_drift_event.rs"),
    );
    let lib = FileCtx::from_source(
        "crates/obs/src/lib.rs",
        "obs",
        CrateKind::Library,
        fixture("counter_drift_obs.rs"),
    );
    let result = run(&[event, lib]);
    let drift: Vec<&Finding> = result
        .findings
        .iter()
        .filter(|f| f.lint == "counter-drift")
        .collect();
    assert_eq!(drift.len(), 3, "{:#?}", result.findings);
    assert!(
        drift
            .iter()
            .any(|f| f.message.contains("ScanBatch") && f.message.contains("from_u64")),
        "{drift:#?}"
    );
    assert!(
        drift
            .iter()
            .any(|f| f.message.contains("LogFlush") && f.message.contains("fn name")),
        "{drift:#?}"
    );
    assert!(
        drift
            .iter()
            .any(|f| f.message.contains("scan_batch") && f.path.ends_with("lib.rs")),
        "{drift:#?}"
    );
}

#[test]
fn counter_drift_is_green_on_the_real_obs_sources() {
    // The actual crates/obs sources must satisfy the drift check — this is
    // the test that breaks when someone adds an EventKind variant or an
    // ObsInner histogram without threading it through decode/exposition.
    let root = format!("{}/../..", env!("CARGO_MANIFEST_DIR"));
    let read = |p: &str| {
        std::fs::read_to_string(format!("{root}/{p}")).unwrap_or_else(|e| panic!("{p}: {e}"))
    };
    let event = FileCtx::from_source(
        "crates/obs/src/event.rs",
        "obs",
        CrateKind::Library,
        read("crates/obs/src/event.rs"),
    );
    let lib = FileCtx::from_source(
        "crates/obs/src/lib.rs",
        "obs",
        CrateKind::Library,
        read("crates/obs/src/lib.rs"),
    );
    let result = run(&[event, lib]);
    let drift: Vec<&Finding> = result
        .findings
        .iter()
        .filter(|f| f.lint == "counter-drift")
        .collect();
    assert_eq!(drift, Vec::<&Finding>::new());
}

#[test]
fn lock_order_cycle_fails_and_dag_passes() {
    let a = FileCtx::from_source(
        "crates/a/src/lib.rs",
        "a",
        CrateKind::Library,
        "// tidy: lock-order(pool < side)\n// tidy: lock-order(side < log)\n".to_string(),
    );
    let b_ok = FileCtx::from_source(
        "crates/b/src/lib.rs",
        "b",
        CrateKind::Library,
        "// tidy: lock-order(pool < log)\n".to_string(),
    );
    let result = run(&[a, b_ok]);
    assert_eq!(
        lines_of(&result.findings, "lock-order"),
        Vec::<u32>::new(),
        "{:#?}",
        result.findings
    );

    let a = FileCtx::from_source(
        "crates/a/src/lib.rs",
        "a",
        CrateKind::Library,
        "// tidy: lock-order(pool < side)\n// tidy: lock-order(side < log)\n".to_string(),
    );
    let b_cycle = FileCtx::from_source(
        "crates/b/src/lib.rs",
        "b",
        CrateKind::Library,
        "// tidy: lock-order(log < pool)\n".to_string(),
    );
    let result = run(&[a, b_cycle]);
    let cycles = lines_of(&result.findings, "lock-order");
    assert_eq!(cycles.len(), 1, "{:#?}", result.findings);
    let msg = &result
        .findings
        .iter()
        .find(|f| f.lint == "lock-order")
        .map(|f| f.message.clone())
        .unwrap_or_default();
    assert!(
        msg.contains("pool") && msg.contains("side") && msg.contains("log"),
        "{msg}"
    );
}

#[test]
fn malformed_and_unused_allows_are_findings() {
    let src = "// tidy: allow(no-panic)\nfn f() {}\n\
               // tidy: allow(no-panic) -- nothing here to suppress\nfn g() {}\n";
    let ctx = FileCtx::from_source(
        "crates/x/src/lib.rs",
        "x",
        CrateKind::Library,
        src.to_string(),
    );
    let result = run(std::slice::from_ref(&ctx));
    assert_eq!(lines_of(&result.findings, "malformed-allow"), vec![1]);
    assert_eq!(lines_of(&result.findings, "unused-allow"), vec![3]);
    assert_eq!(result.findings.len(), 2, "{:#?}", result.findings);
}

#[test]
fn json_report_contains_findings_and_allows() {
    let (findings, _) = lint_fixture("no_panic_violations.rs");
    let json = rewind_lint::report::to_json(&findings, &[], 1);
    assert!(json.contains("\"finding_count\": 6"));
    assert!(json.contains("\"no-panic\""));
    assert!(json.contains("\"files_scanned\": 1"));
}
