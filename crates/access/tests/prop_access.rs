//! Property tests for the access layer: memcomparable encoding as an order
//! homomorphism, row-codec roundtrips, and the B-Tree against a `BTreeMap`
//! under arbitrary operation sequences.

use proptest::prelude::*;
use rewind_access::keys::{encode_key, encode_key_owned, prefix_upper_bound};
use rewind_access::store::MemStore;
use rewind_access::value::{decode_row, encode_row};
use rewind_access::{BTree, Value};
use rewind_common::{Error, ObjectId};
use std::cmp::Ordering;
use std::collections::BTreeMap;
use std::ops::Bound;

fn value_strategy() -> impl Strategy<Value = Value> {
    prop_oneof![
        any::<u64>().prop_map(Value::U64),
        any::<i64>().prop_map(Value::I64),
        any::<bool>().prop_map(Value::Bool),
        "[a-z\\x00]{0,12}".prop_map(Value::Str),
        proptest::collection::vec(any::<u8>(), 0..16).prop_map(Value::Bytes),
        Just(Value::Null),
    ]
}

/// Total order on same-variant values, Null first (mirrors the encoding's
/// documented semantics).
fn logical_cmp(a: &Value, b: &Value) -> Option<Ordering> {
    use Value::*;
    match (a, b) {
        (Null, Null) => Some(Ordering::Equal),
        (Null, _) => Some(Ordering::Less),
        (_, Null) => Some(Ordering::Greater),
        (U64(x), U64(y)) => Some(x.cmp(y)),
        (I64(x), I64(y)) => Some(x.cmp(y)),
        (Bool(x), Bool(y)) => Some(x.cmp(y)),
        (Str(x), Str(y)) => Some(x.cmp(y)),
        (Bytes(x), Bytes(y)) => Some(x.cmp(y)),
        _ => None, // mixed types: schema prevents this
    }
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 256, .. ProptestConfig::default() })]

    #[test]
    fn memcmp_encoding_preserves_order(a in value_strategy(), b in value_strategy()) {
        if let Some(expect) = logical_cmp(&a, &b) {
            let ka = encode_key(&[&a]);
            let kb = encode_key(&[&b]);
            match (ka, kb) {
                (Ok(ka), Ok(kb)) => prop_assert_eq!(ka.cmp(&kb), expect, "{:?} vs {:?}", a, b),
                // only the single-NULL key can fail (empty encoding is rejected)
                _ => prop_assert!(matches!(a, Value::Null) || matches!(b, Value::Null)),
            }
        }
    }

    #[test]
    fn composite_keys_order_lexicographically(
        a1 in any::<u64>(), a2 in "[a-z]{0,6}", b1 in any::<u64>(), b2 in "[a-z]{0,6}"
    ) {
        let ka = encode_key_owned(&[Value::U64(a1), Value::Str(a2.clone())]).unwrap();
        let kb = encode_key_owned(&[Value::U64(b1), Value::Str(b2.clone())]).unwrap();
        let expect = (a1, a2).cmp(&(b1, b2));
        prop_assert_eq!(ka.cmp(&kb), expect);
    }

    #[test]
    fn prefix_upper_bound_is_tight(p in any::<u64>(), suffix in "[a-z]{0,8}") {
        let prefix = encode_key_owned(&[Value::U64(p)]).unwrap();
        let inside = encode_key_owned(&[Value::U64(p), Value::Str(suffix)]).unwrap();
        let ub = prefix_upper_bound(&prefix);
        prop_assert!(inside < ub);
        if p < u64::MAX {
            let outside = encode_key_owned(&[Value::U64(p + 1)]).unwrap();
            prop_assert!(outside > ub);
        }
    }

    #[test]
    fn row_codec_roundtrips(row in proptest::collection::vec(value_strategy(), 0..12)) {
        let bytes = encode_row(&row);
        let back = decode_row(&bytes).unwrap();
        prop_assert_eq!(back, row);
    }
}

#[derive(Clone, Debug)]
enum TreeOp {
    Insert(u16, u8),
    Delete(u16),
    Update(u16, u8),
    Get(u16),
    Scan(u16, u16),
}

fn tree_op() -> impl Strategy<Value = TreeOp> {
    prop_oneof![
        (any::<u16>(), any::<u8>()).prop_map(|(k, v)| TreeOp::Insert(k, v)),
        any::<u16>().prop_map(TreeOp::Delete),
        (any::<u16>(), any::<u8>()).prop_map(|(k, v)| TreeOp::Update(k, v)),
        any::<u16>().prop_map(TreeOp::Get),
        (any::<u16>(), any::<u16>()).prop_map(|(a, b)| TreeOp::Scan(a, b)),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 24, .. ProptestConfig::default() })]

    #[test]
    fn btree_matches_btreemap(ops in proptest::collection::vec(tree_op(), 1..400)) {
        let store = MemStore::new(2);
        let tree = BTree::create(&store, ObjectId(1)).unwrap();
        let mut model: BTreeMap<Vec<u8>, Vec<u8>> = BTreeMap::new();
        for op in ops {
            match op {
                TreeOp::Insert(k, v) => {
                    let key = k.to_be_bytes().to_vec();
                    let val = vec![v; (v as usize % 64) + 1];
                    match tree.insert(&store, &key, &val) {
                        Ok(()) => { prop_assert!(model.insert(key, val).is_none()); }
                        Err(Error::DuplicateKey) => prop_assert!(model.contains_key(&key)),
                        Err(e) => return Err(TestCaseError::fail(format!("{e}"))),
                    }
                }
                TreeOp::Delete(k) => {
                    let key = k.to_be_bytes().to_vec();
                    match tree.delete(&store, &key) {
                        Ok(()) => { prop_assert!(model.remove(&key).is_some()); }
                        Err(Error::KeyNotFound) => prop_assert!(!model.contains_key(&key)),
                        Err(e) => return Err(TestCaseError::fail(format!("{e}"))),
                    }
                }
                TreeOp::Update(k, v) => {
                    let key = k.to_be_bytes().to_vec();
                    let val = vec![v; (v as usize % 900) + 1];
                    match tree.update(&store, &key, &val) {
                        Ok(()) => { prop_assert!(model.insert(key, val).is_some()); }
                        Err(Error::KeyNotFound) => prop_assert!(!model.contains_key(&key)),
                        Err(e) => return Err(TestCaseError::fail(format!("{e}"))),
                    }
                }
                TreeOp::Get(k) => {
                    let key = k.to_be_bytes().to_vec();
                    prop_assert_eq!(tree.get(&store, &key).unwrap(), model.get(&key).cloned());
                }
                TreeOp::Scan(a, b) => {
                    let (lo, hi) = if a <= b { (a, b) } else { (b, a) };
                    let lo_k = lo.to_be_bytes().to_vec();
                    let hi_k = hi.to_be_bytes().to_vec();
                    let mut got = Vec::new();
                    tree.scan(&store, Bound::Included(&lo_k[..]), Bound::Included(&hi_k[..]), |k, v| {
                        got.push((k.to_vec(), v.to_vec()));
                        Ok(true)
                    }).unwrap();
                    let expect: Vec<_> = model
                        .range(lo_k..=hi_k)
                        .map(|(k, v)| (k.clone(), v.clone()))
                        .collect();
                    prop_assert_eq!(got, expect);
                }
            }
        }
        prop_assert_eq!(tree.verify(&store).unwrap(), model.len());
    }
}
