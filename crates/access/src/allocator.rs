//! The allocation manager.
//!
//! Page allocation state lives in allocation-map pages (see
//! [`rewind_pagestore::alloc`]) and every change to it is logged as a
//! regular page modification, so allocation state is unwound by the same
//! physical undo as everything else (paper §3).
//!
//! The paper's §4.2-1 protocol is implemented here:
//!
//! * first allocation of a virgin page (ever-allocated bit clear) logs only
//!   the map change and a `Format` — "this eliminates unnecessary logging
//!   during the initial data loading";
//! * *re*-allocation of a previously used page first reads the page's old
//!   content (the possible extra I/O the paper accepts) and logs a
//!   `Preformat` record carrying that image, splicing the page's old chain
//!   onto its new one;
//! * deallocation touches only the map — the page's content is deliberately
//!   left in place so as-of queries can still unwind to it.

use crate::store::{ModKind, Store};
use rewind_common::{Error, ObjectId, PageId, Result};
use rewind_pagestore::alloc::{
    bit_index, find_free, get_state, is_map_page, map_page_for, region_base, PageState, REGION_SIZE,
};
use rewind_pagestore::PageType;
use rewind_wal::LogPayload;

/// Maximum number of allocation regions to search (bounds the database at
/// `MAX_REGIONS * REGION_SIZE` pages ≈ 16 GiB with 8 KiB pages).
pub const MAX_REGIONS: u64 = 64;

/// Ensure the allocation-map page for region `r` is formatted; returns its
/// page id.
fn ensure_map<S: Store>(s: &S, r: u64, kind: ModKind) -> Result<PageId> {
    let map_pid = if r == 0 {
        PageId(1)
    } else {
        PageId(r * REGION_SIZE)
    };
    let formatted = s.with_page(map_pid, |p| Ok(p.page_type() == PageType::AllocMap))?;
    if !formatted {
        s.modify(
            map_pid,
            LogPayload::Format {
                object: ObjectId::NONE,
                ty: PageType::AllocMap,
                level: 0,
                next: PageId::INVALID,
                prev: PageId::INVALID,
            },
            kind,
        )?;
        let perm = PageState {
            allocated: true,
            ever_allocated: true,
        }
        .to_bits();
        if r == 0 {
            // boot page + the map itself
            s.modify(
                map_pid,
                LogPayload::AllocSet {
                    index: 0,
                    old: 0,
                    new: perm,
                },
                kind,
            )?;
            s.modify(
                map_pid,
                LogPayload::AllocSet {
                    index: 1,
                    old: 0,
                    new: perm,
                },
                kind,
            )?;
        } else {
            s.modify(
                map_pid,
                LogPayload::AllocSet {
                    index: 0,
                    old: 0,
                    new: perm,
                },
                kind,
            )?;
        }
    }
    Ok(map_pid)
}

/// Allocate a page and format it for `object`.
///
/// `kind` attributes the log records: [`ModKind::Smo`] inside structure
/// modifications, [`ModKind::User`] for directly compensable allocations
/// (e.g. CREATE TABLE roots).
pub fn allocate_page<S: Store>(
    s: &S,
    object: ObjectId,
    ty: PageType,
    level: u16,
    next: PageId,
    prev: PageId,
    kind: ModKind,
) -> Result<PageId> {
    for r in 0..MAX_REGIONS {
        let map_pid = ensure_map(s, r, kind)?;
        let found = s.with_page(map_pid, |p| match find_free(p, 0) {
            Some(idx) => Ok(Some((idx, get_state(p, idx)?))),
            None => Ok(None),
        })?;
        let (idx, st) = match found {
            Some(x) => x,
            None => continue,
        };
        let pid = PageId(region_base(map_pid) + idx as u64);
        // mark allocated (keeps / sets the ever bit)
        s.modify(
            map_pid,
            LogPayload::AllocSet {
                index: idx as u32,
                old: st.to_bits(),
                new: PageState {
                    allocated: true,
                    ever_allocated: true,
                }
                .to_bits(),
            },
            kind,
        )?;
        if st.ever_allocated {
            // Re-allocation: splice the old chain with a preformat record
            // carrying the previous content (paper §4.2-1, Fig. 2). Reading
            // the old content may cost an I/O — the accepted trade-off.
            let prev_image = s.with_page(pid, |p| Ok(Box::new(*p.image())))?;
            s.modify(pid, LogPayload::Preformat { prev_image }, kind)?;
        }
        s.modify(
            pid,
            LogPayload::Format {
                object,
                ty,
                level,
                next,
                prev,
            },
            kind,
        )?;
        return Ok(pid);
    }
    Err(Error::Internal(
        "allocation failed: all regions full".into(),
    ))
}

/// Deallocate `pid`: clear its allocated bit, keep the ever-allocated bit,
/// and leave the page content untouched.
pub fn free_page<S: Store>(s: &S, pid: PageId, kind: ModKind) -> Result<()> {
    if is_map_page(pid) || pid == PageId::BOOT {
        return Err(Error::InvalidArg(format!(
            "cannot free metadata page {pid:?}"
        )));
    }
    let map_pid = map_page_for(pid);
    let idx = bit_index(pid);
    let st = s.with_page(map_pid, |p| get_state(p, idx))?;
    if !st.allocated {
        return Err(Error::InvalidArg(format!("double free of {pid:?}")));
    }
    s.modify(
        map_pid,
        LogPayload::AllocSet {
            index: idx as u32,
            old: st.to_bits(),
            new: PageState {
                allocated: false,
                ever_allocated: true,
            }
            .to_bits(),
        },
        kind,
    )?;
    Ok(())
}

/// Whether `pid` is currently allocated.
pub fn is_allocated<S: Store>(s: &S, pid: PageId) -> Result<bool> {
    if pid == PageId::BOOT || is_map_page(pid) {
        return Ok(true);
    }
    let map_pid = map_page_for(pid);
    let formatted = s.with_page(map_pid, |p| Ok(p.page_type() == PageType::AllocMap))?;
    if !formatted {
        return Ok(false);
    }
    Ok(s.with_page(map_pid, |p| get_state(p, bit_index(pid)))?
        .allocated)
}

/// Count allocated pages across all formatted regions (diagnostics; as-of
/// snapshots report their rewound allocation count with the same code).
pub fn allocated_count<S: Store>(s: &S) -> Result<usize> {
    let mut total = 0usize;
    for r in 0..MAX_REGIONS {
        let map_pid = if r == 0 {
            PageId(1)
        } else {
            PageId(r * REGION_SIZE)
        };
        let n = s.with_page(map_pid, |p| {
            Ok(if p.page_type() == PageType::AllocMap {
                Some(rewind_pagestore::alloc::count_allocated(p))
            } else {
                None
            })
        });
        match n {
            Ok(Some(n)) => total += n,
            Ok(None) | Err(_) => break,
        }
    }
    Ok(total)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::store::MemStore;

    /// MemStore-based harness: note MemStore's own `allocate` is naive; these
    /// tests drive the real allocator functions through `modify`.
    fn setup() -> MemStore {
        MemStore::new(8)
    }

    fn alloc(s: &MemStore, obj: u64) -> PageId {
        allocate_page(
            s,
            ObjectId(obj),
            PageType::BTreeLeaf,
            0,
            PageId::INVALID,
            PageId::INVALID,
            ModKind::User,
        )
        .unwrap()
    }

    #[test]
    fn first_allocations_skip_boot_and_map() {
        let s = setup();
        let a = alloc(&s, 1);
        let b = alloc(&s, 1);
        assert_eq!(a, PageId(2), "page 0 is boot, page 1 is the map");
        assert_eq!(b, PageId(3));
        assert!(is_allocated(&s, a).unwrap());
        assert!(is_allocated(&s, PageId(1)).unwrap());
        assert!(is_allocated(&s, PageId::BOOT).unwrap());
        assert!(!is_allocated(&s, PageId(9)).unwrap());
        assert_eq!(allocated_count(&s).unwrap(), 4); // boot, map, a, b
    }

    #[test]
    fn formats_the_target_page() {
        let s = setup();
        let pid = alloc(&s, 5);
        s.with_page(pid, |p| {
            assert_eq!(p.page_type(), PageType::BTreeLeaf);
            assert_eq!(p.object_id(), ObjectId(5));
            assert_eq!(p.page_id(), pid);
            Ok(())
        })
        .unwrap();
    }

    #[test]
    fn free_then_reallocate_sets_ever_bit_semantics() {
        let s = setup();
        let a = alloc(&s, 1);
        // write something memorable, then free
        s.modify(
            a,
            LogPayload::InsertRecord {
                slot: 0,
                bytes: b"old-life".to_vec(),
            },
            ModKind::User,
        )
        .unwrap();
        free_page(&s, a, ModKind::User).unwrap();
        assert!(!is_allocated(&s, a).unwrap());
        // content untouched by deallocation (the paper depends on this)
        s.with_page(a, |p| {
            assert_eq!(p.record(0).unwrap(), b"old-life");
            Ok(())
        })
        .unwrap();
        // re-allocate: lowest free bit is `a` again
        let b = alloc(&s, 2);
        assert_eq!(b, a);
        s.with_page(b, |p| {
            assert_eq!(p.object_id(), ObjectId(2));
            assert_eq!(p.slot_count(), 0);
            Ok(())
        })
        .unwrap();
    }

    #[test]
    fn double_free_and_metadata_free_rejected() {
        let s = setup();
        let a = alloc(&s, 1);
        free_page(&s, a, ModKind::User).unwrap();
        assert!(free_page(&s, a, ModKind::User).is_err());
        assert!(free_page(&s, PageId::BOOT, ModKind::User).is_err());
        assert!(free_page(&s, PageId(1), ModKind::User).is_err());
    }
}
