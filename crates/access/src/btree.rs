//! The B-Tree index manager.
//!
//! Clustered B+-trees over memcomparable byte keys. Leaf records are
//! `[u16 klen | key | value]`; internal records are `[u16 klen | key |
//! u64 child]`, with slot 0 of every internal page holding the empty
//! "minus infinity" key. Leaves are doubly linked for range scans in both
//! directions.
//!
//! **The root page id never changes**: a root split moves the root's
//! contents into two fresh children and reformats the root in place, so the
//! catalog can hold a permanent root pointer.
//!
//! Inserts split *preventively* on the way down (a node is split before
//! descending into it if it could not absorb a maximal entry), which keeps
//! every split local to one parent/child pair. Each split is logged as a
//! nested top action: all moves carry undo information — including the
//! deletes from the old page, the paper's §4.2-3 extension — and a closing
//! CLR makes rollback skip the completed split.
//!
//! All *read* paths take any [`Store`], which is what makes the same code
//! serve the live database and as-of snapshots (paper §5.3).

use crate::store::{ModKind, Store};
use rewind_common::codec::{read_u16_at, read_u64_at};
use rewind_common::{Error, Lsn, ObjectId, PageId, Result};
use rewind_pagestore::{Page, PageType};
use rewind_wal::LogPayload;
use std::ops::Bound;

/// Largest key accepted by the tree.
pub const MAX_KEY: usize = 512;
/// Largest leaf entry (key + value + header) accepted by the tree; pages are
/// preventively split when they cannot absorb one more maximal entry.
pub const MAX_ENTRY: usize = 2048;

const SEP_ENTRY: usize = 2 + MAX_KEY + 8 + 4;

/// A handle to one B-Tree: its owning object and (permanent) root page.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct BTree {
    /// Catalog object this tree belongs to.
    pub object: ObjectId,
    /// The tree's root page (never changes).
    pub root: PageId,
}

// ---- record codecs ---------------------------------------------------------

/// Build a leaf record from `key` and `value`.
pub fn leaf_record(key: &[u8], value: &[u8]) -> Vec<u8> {
    let mut rec = Vec::with_capacity(2 + key.len() + value.len());
    rec.extend_from_slice(&(key.len() as u16).to_le_bytes());
    rec.extend_from_slice(key);
    rec.extend_from_slice(value);
    rec
}

/// Split a leaf record into `(key, value)`.
pub fn decode_leaf(rec: &[u8]) -> (&[u8], &[u8]) {
    let klen = read_u16_at(rec, 0) as usize;
    (&rec[2..2 + klen], &rec[2 + klen..])
}

fn internal_record(key: &[u8], child: PageId) -> Vec<u8> {
    let mut rec = Vec::with_capacity(2 + key.len() + 8);
    rec.extend_from_slice(&(key.len() as u16).to_le_bytes());
    rec.extend_from_slice(key);
    rec.extend_from_slice(&child.0.to_le_bytes());
    rec
}

fn decode_internal(rec: &[u8]) -> (&[u8], PageId) {
    let klen = read_u16_at(rec, 0) as usize;
    let key = &rec[2..2 + klen];
    let child = read_u64_at(rec, 2 + klen);
    (key, PageId(child))
}

fn record_key(page: &Page, slot: usize) -> Result<&[u8]> {
    let rec = page.record(slot)?;
    let klen = read_u16_at(rec, 0) as usize;
    Ok(&rec[2..2 + klen])
}

// ---- page probes (run under a latch) ---------------------------------------

/// Position of `key` in a leaf: `Ok(slot)` if present, `Err(slot)` giving
/// the insert position otherwise.
fn leaf_search(page: &Page, key: &[u8]) -> Result<std::result::Result<usize, usize>> {
    let n = page.slot_count() as usize;
    let mut lo = 0usize;
    let mut hi = n;
    while lo < hi {
        let mid = (lo + hi) / 2;
        if record_key(page, mid)? < key {
            lo = mid + 1;
        } else {
            hi = mid;
        }
    }
    if lo < n && record_key(page, lo)? == key {
        Ok(Ok(lo))
    } else {
        Ok(Err(lo))
    }
}

/// The child to descend into for `key`: the rightmost slot whose key is
/// `<= key` (slot 0's empty key is `<=` everything).
fn internal_search(page: &Page, key: &[u8]) -> Result<(usize, PageId)> {
    let n = page.slot_count() as usize;
    if n == 0 {
        return Err(Error::corruption(format!(
            "empty internal page {:?}",
            page.page_id()
        )));
    }
    let mut lo = 1usize;
    let mut hi = n;
    while lo < hi {
        let mid = (lo + hi) / 2;
        if record_key(page, mid)? <= key {
            lo = mid + 1;
        } else {
            hi = mid;
        }
    }
    let slot = lo - 1;
    let (_, child) = decode_internal(page.record(slot)?);
    Ok((slot, child))
}

struct NodeProbe {
    ty: PageType,
    child: PageId,
    needs_split: bool,
}

fn probe_node(page: &Page, key: &[u8], leaf_need: usize) -> Result<NodeProbe> {
    let ty = page.try_page_type()?;
    match ty {
        PageType::BTreeLeaf => Ok(NodeProbe {
            ty,
            child: PageId::INVALID,
            needs_split: !page.can_insert(leaf_need),
        }),
        PageType::BTreeInternal => {
            let (_, child) = internal_search(page, key)?;
            Ok(NodeProbe {
                ty,
                child,
                needs_split: !page.can_insert(SEP_ENTRY),
            })
        }
        other => Err(Error::corruption(format!(
            "page {:?} is not a B-Tree page (type {other:?})",
            page.page_id()
        ))),
    }
}

// ---- public operations ------------------------------------------------------

impl BTree {
    /// Create a new empty tree for `object`; allocates and returns the root.
    pub fn create<S: Store>(s: &S, object: ObjectId) -> Result<BTree> {
        let root = s.allocate(
            object,
            PageType::BTreeLeaf,
            0,
            PageId::INVALID,
            PageId::INVALID,
            ModKind::User,
        )?;
        Ok(BTree { object, root })
    }

    /// Point lookup: the value stored under `key`, if any.
    pub fn get<S: Store>(&self, s: &S, key: &[u8]) -> Result<Option<Vec<u8>>> {
        s.with_object_latch(self.object, false, || self.get_inner(s, key))
    }

    fn get_inner<S: Store>(&self, s: &S, key: &[u8]) -> Result<Option<Vec<u8>>> {
        let mut cur = self.root;
        loop {
            enum Step {
                Descend(PageId),
                Found(Vec<u8>),
                Missing,
            }
            let step = s.with_page(cur, |p| match p.try_page_type()? {
                PageType::BTreeInternal => Ok(Step::Descend(internal_search(p, key)?.1)),
                PageType::BTreeLeaf => match leaf_search(p, key)? {
                    Ok(slot) => {
                        let (_, v) = decode_leaf(p.record(slot)?);
                        Ok(Step::Found(v.to_vec()))
                    }
                    Err(_) => Ok(Step::Missing),
                },
                other => Err(Error::corruption(format!("unexpected page type {other:?}"))),
            })?;
            match step {
                Step::Descend(c) => cur = c,
                Step::Found(v) => return Ok(Some(v)),
                Step::Missing => return Ok(None),
            }
        }
    }

    /// Insert `key -> value`. Fails with [`Error::DuplicateKey`] if present.
    pub fn insert<S: Store>(&self, s: &S, key: &[u8], value: &[u8]) -> Result<()> {
        self.insert_mode(s, key, value, ModKind::User, false)
    }

    /// Insert or overwrite `key -> value`.
    pub fn upsert<S: Store>(&self, s: &S, key: &[u8], value: &[u8]) -> Result<()> {
        self.insert_mode(s, key, value, ModKind::User, true)
    }

    /// Insert with an explicit [`ModKind`] for the final row operation
    /// (rollback passes `Clr`); `upsert` tolerates an existing key.
    pub fn insert_mode<S: Store>(
        &self,
        s: &S,
        key: &[u8],
        value: &[u8],
        kind: ModKind,
        upsert: bool,
    ) -> Result<()> {
        s.with_object_latch(self.object, true, || {
            self.insert_inner(s, key, value, kind, upsert)
        })
    }

    fn insert_inner<S: Store>(
        &self,
        s: &S,
        key: &[u8],
        value: &[u8],
        kind: ModKind,
        upsert: bool,
    ) -> Result<()> {
        check_key(key)?;
        let rec = leaf_record(key, value);
        if rec.len() > MAX_ENTRY {
            return Err(Error::RecordTooLarge {
                size: rec.len(),
                max: MAX_ENTRY,
            });
        }
        let need = rec.len();
        loop {
            // ensure the root can absorb either a leaf entry or a separator
            let root_probe = s.with_page(self.root, |p| probe_node(p, key, need))?;
            if root_probe.needs_split {
                self.split_root(s)?;
                continue;
            }
            let mut parent;
            let mut cur = self.root;
            let mut probe = root_probe;
            loop {
                if probe.ty == PageType::BTreeLeaf {
                    // room is guaranteed by preventive splitting
                    let pos = s.with_page(cur, |p| leaf_search(p, key))?;
                    match pos {
                        Ok(slot) => {
                            if !upsert {
                                return Err(Error::DuplicateKey);
                            }
                            let old = s.with_page(cur, |p| Ok(p.record(slot)?.to_vec()))?;
                            s.modify(
                                cur,
                                LogPayload::UpdateRecord {
                                    slot: slot as u16,
                                    old,
                                    new: rec.clone(),
                                },
                                kind,
                            )?;
                        }
                        Err(slot) => {
                            s.modify(
                                cur,
                                LogPayload::InsertRecord {
                                    slot: slot as u16,
                                    bytes: rec.clone(),
                                },
                                kind,
                            )?;
                        }
                    }
                    return Ok(());
                }
                parent = cur;
                let child = probe.child;
                let child_probe = s.with_page(child, |p| probe_node(p, key, need))?;
                if child_probe.needs_split {
                    self.split_child(s, parent, child)?;
                    // re-probe the parent: the separator may redirect us
                    probe = s.with_page(parent, |p| probe_node(p, key, need))?;
                    continue;
                }
                cur = child;
                probe = child_probe;
            }
        }
    }

    /// Delete `key`. Fails with [`Error::KeyNotFound`] if absent.
    pub fn delete<S: Store>(&self, s: &S, key: &[u8]) -> Result<()> {
        self.delete_mode(s, key, ModKind::User)?
            .then_some(())
            .ok_or(Error::KeyNotFound)
    }

    /// Delete with an explicit [`ModKind`]; returns whether the key existed.
    pub fn delete_mode<S: Store>(&self, s: &S, key: &[u8], kind: ModKind) -> Result<bool> {
        s.with_object_latch(self.object, true, || self.delete_inner(s, key, kind))
    }

    fn delete_inner<S: Store>(&self, s: &S, key: &[u8], kind: ModKind) -> Result<bool> {
        let leaf = self.descend_to_leaf(s, key)?;
        let found = s.with_page(leaf, |p| {
            Ok(match leaf_search(p, key)? {
                Ok(slot) => Some((slot, p.record(slot)?.to_vec())),
                Err(_) => None,
            })
        })?;
        match found {
            Some((slot, old)) => {
                s.modify(
                    leaf,
                    LogPayload::DeleteRecord {
                        slot: slot as u16,
                        old,
                    },
                    kind,
                )?;
                Ok(true)
            }
            None => Ok(false),
        }
    }

    /// Replace the value under `key`. Fails with [`Error::KeyNotFound`] if
    /// absent. Falls back to delete+insert when the new value no longer fits
    /// in place.
    pub fn update<S: Store>(&self, s: &S, key: &[u8], value: &[u8]) -> Result<()> {
        s.with_object_latch(self.object, true, || self.update_inner(s, key, value))
    }

    fn update_inner<S: Store>(&self, s: &S, key: &[u8], value: &[u8]) -> Result<()> {
        check_key(key)?;
        let rec = leaf_record(key, value);
        if rec.len() > MAX_ENTRY {
            return Err(Error::RecordTooLarge {
                size: rec.len(),
                max: MAX_ENTRY,
            });
        }
        let leaf = self.descend_to_leaf(s, key)?;
        let found = s.with_page(leaf, |p| {
            Ok(match leaf_search(p, key)? {
                Ok(slot) => {
                    let old = p.record(slot)?.to_vec();
                    let fits = rec.len() <= old.len() + p.free_space();
                    Some((slot, old, fits))
                }
                Err(_) => None,
            })
        })?;
        match found {
            None => Err(Error::KeyNotFound),
            Some((slot, old, true)) => {
                s.modify(
                    leaf,
                    LogPayload::UpdateRecord {
                        slot: slot as u16,
                        old,
                        new: rec,
                    },
                    ModKind::User,
                )?;
                Ok(())
            }
            Some((slot, old, false)) => {
                s.modify(
                    leaf,
                    LogPayload::DeleteRecord {
                        slot: slot as u16,
                        old,
                    },
                    ModKind::User,
                )?;
                let (_, v) = decode_leaf(&rec);
                self.insert_inner(s, key, v, ModKind::User, false)
            }
        }
    }

    /// Range scan: invoke `f(key, value)` for entries in the given bounds,
    /// ascending, until exhausted or `f` returns `false`.
    ///
    /// Latches are never held across `f`: each leaf's qualifying entries are
    /// copied out first, so `f` may block (snapshot row gates) or re-enter
    /// the store.
    pub fn scan<S: Store>(
        &self,
        s: &S,
        lo: Bound<&[u8]>,
        hi: Bound<&[u8]>,
        f: impl FnMut(&[u8], &[u8]) -> Result<bool>,
    ) -> Result<()> {
        s.with_object_latch(self.object, false, || self.scan_inner(s, lo, hi, f))
    }

    fn scan_inner<S: Store>(
        &self,
        s: &S,
        lo: Bound<&[u8]>,
        hi: Bound<&[u8]>,
        mut f: impl FnMut(&[u8], &[u8]) -> Result<bool>,
    ) -> Result<()> {
        let start_key: &[u8] = match lo {
            Bound::Included(k) | Bound::Excluded(k) => k,
            Bound::Unbounded => &[],
        };
        let mut leaf = self.descend_to_leaf(s, start_key)?;
        loop {
            let (entries, next) = s.with_page(leaf, |p| {
                let mut out = Vec::new();
                for i in 0..p.slot_count() as usize {
                    let (k, v) = decode_leaf(p.record(i)?);
                    if !above_lo(k, &lo) {
                        continue;
                    }
                    if !below_hi(k, &hi) {
                        return Ok((out, PageId::INVALID));
                    }
                    out.push((k.to_vec(), v.to_vec()));
                }
                Ok((out, p.next_page()))
            })?;
            for (k, v) in entries {
                if !f(&k, &v)? {
                    return Ok(());
                }
            }
            if !next.is_valid() {
                return Ok(());
            }
            leaf = next;
        }
    }

    /// Range scan, descending from `hi` down to `lo`.
    pub fn scan_desc<S: Store>(
        &self,
        s: &S,
        lo: Bound<&[u8]>,
        hi: Bound<&[u8]>,
        f: impl FnMut(&[u8], &[u8]) -> Result<bool>,
    ) -> Result<()> {
        s.with_object_latch(self.object, false, || self.scan_desc_inner(s, lo, hi, f))
    }

    fn scan_desc_inner<S: Store>(
        &self,
        s: &S,
        lo: Bound<&[u8]>,
        hi: Bound<&[u8]>,
        mut f: impl FnMut(&[u8], &[u8]) -> Result<bool>,
    ) -> Result<()> {
        // Descend towards the upper bound.
        let probe_key: Vec<u8> = match hi {
            Bound::Included(k) | Bound::Excluded(k) => k.to_vec(),
            Bound::Unbounded => vec![0xFF; MAX_KEY],
        };
        let mut leaf = self.descend_to_leaf(s, &probe_key)?;
        loop {
            let (mut entries, prev) = s.with_page(leaf, |p| {
                let mut out = Vec::new();
                for i in 0..p.slot_count() as usize {
                    let (k, v) = decode_leaf(p.record(i)?);
                    if above_lo(k, &lo) && below_hi(k, &hi) {
                        out.push((k.to_vec(), v.to_vec()));
                    }
                }
                Ok((out, p.prev_page()))
            })?;
            entries.reverse();
            let had_any = !entries.is_empty();
            for (k, v) in entries {
                if !f(&k, &v)? {
                    return Ok(());
                }
            }
            if !prev.is_valid() {
                return Ok(());
            }
            // Stop once a page produced nothing and we're below the range.
            let below = s.with_page(leaf, |p| {
                Ok(p.slot_count() > 0 && !above_lo(record_key(p, 0)?, &lo))
            })?;
            if !had_any && below {
                return Ok(());
            }
            leaf = prev;
        }
    }

    fn descend_to_leaf<S: Store>(&self, s: &S, key: &[u8]) -> Result<PageId> {
        let mut cur = self.root;
        loop {
            let next = s.with_page(cur, |p| match p.try_page_type()? {
                PageType::BTreeInternal => Ok(Some(internal_search(p, key)?.1)),
                PageType::BTreeLeaf => Ok(None),
                other => Err(Error::corruption(format!(
                    "page {:?}: unexpected type {other:?} in tree {:?}",
                    p.page_id(),
                    self.object
                ))),
            })?;
            match next {
                Some(c) => cur = c,
                None => return Ok(cur),
            }
        }
    }

    // ---- splits (nested top actions) ---------------------------------------

    /// Pick a byte-balanced split index in `[1, n-1]`.
    fn split_index(sizes: &[usize]) -> usize {
        let total: usize = sizes.iter().sum();
        let mut acc = 0;
        for (i, sz) in sizes.iter().enumerate() {
            acc += sz;
            if acc * 2 >= total && i + 1 < sizes.len() {
                return i + 1;
            }
        }
        sizes.len().saturating_sub(1).max(1)
    }

    fn split_child<S: Store>(&self, s: &S, parent: PageId, child: PageId) -> Result<()> {
        let anchor = s.txn_last_lsn();
        let (records, ty, level, old_next) = s.with_page(child, |p| {
            let recs: Vec<Vec<u8>> = p.records().map(|r| r.to_vec()).collect();
            Ok((recs, p.try_page_type()?, p.level(), p.next_page()))
        })?;
        let n = records.len();
        if n < 2 {
            return Err(Error::Internal(format!(
                "cannot split page {child:?} with {n} records"
            )));
        }
        let sizes: Vec<usize> = records.iter().map(|r| r.len()).collect();
        let idx = Self::split_index(&sizes);

        // Separator and the records that move right.
        let (sep, right_records): (Vec<u8>, Vec<Vec<u8>>) = match ty {
            PageType::BTreeLeaf => {
                let (k, _) = decode_leaf(&records[idx]);
                (k.to_vec(), records[idx..].to_vec())
            }
            PageType::BTreeInternal => {
                let (k, c) = decode_internal(&records[idx]);
                let mut right = vec![internal_record(&[], c)];
                right.extend(records[idx + 1..].iter().cloned());
                (k.to_vec(), right)
            }
            other => return Err(Error::corruption(format!("split of {other:?} page"))),
        };

        let q = s.allocate(self.object, ty, level, old_next, child, ModKind::Smo)?;
        for (i, rec) in right_records.iter().enumerate() {
            s.modify(
                q,
                LogPayload::InsertRecord {
                    slot: i as u16,
                    bytes: rec.clone(),
                },
                ModKind::Smo,
            )?;
        }
        // delete moved records from the old page, highest slot first
        // (each delete logs the full old record: the paper's §4.2-3 rule)
        for j in (idx..n).rev() {
            s.modify(
                child,
                LogPayload::DeleteRecord {
                    slot: j as u16,
                    old: records[j].clone(),
                },
                ModKind::Smo,
            )?;
        }
        if ty == PageType::BTreeLeaf {
            s.modify(
                child,
                LogPayload::SetNextPage {
                    old: old_next,
                    new: q,
                },
                ModKind::Smo,
            )?;
            if old_next.is_valid() {
                s.modify(
                    old_next,
                    LogPayload::SetPrevPage { old: child, new: q },
                    ModKind::Smo,
                )?;
            }
        }
        // hook the separator into the parent (room guaranteed by preventive
        // splitting)
        let pos = s.with_page(parent, |p| {
            let n = p.slot_count() as usize;
            let mut lo = 1usize;
            let mut hi = n;
            while lo < hi {
                let mid = (lo + hi) / 2;
                if record_key(p, mid)? <= sep.as_slice() {
                    lo = mid + 1;
                } else {
                    hi = mid;
                }
            }
            Ok(lo)
        })?;
        s.modify(
            parent,
            LogPayload::InsertRecord {
                slot: pos as u16,
                bytes: internal_record(&sep, q),
            },
            ModKind::Smo,
        )?;
        s.end_smo(anchor)
    }

    /// Split the root in place: move its contents into two new children and
    /// reformat the root as an internal page one level up.
    fn split_root<S: Store>(&self, s: &S) -> Result<()> {
        let anchor = s.txn_last_lsn();
        let (records, ty, level, image) = s.with_page(self.root, |p| {
            let recs: Vec<Vec<u8>> = p.records().map(|r| r.to_vec()).collect();
            Ok((recs, p.try_page_type()?, p.level(), Box::new(*p.image())))
        })?;
        let n = records.len();
        if n < 2 {
            return Err(Error::Internal(format!(
                "cannot split root with {n} records"
            )));
        }
        let sizes: Vec<usize> = records.iter().map(|r| r.len()).collect();
        let idx = Self::split_index(&sizes);

        let (sep, left_records, right_records): (Vec<u8>, Vec<Vec<u8>>, Vec<Vec<u8>>) = match ty {
            PageType::BTreeLeaf => {
                let (k, _) = decode_leaf(&records[idx]);
                (k.to_vec(), records[..idx].to_vec(), records[idx..].to_vec())
            }
            PageType::BTreeInternal => {
                let (k, c) = decode_internal(&records[idx]);
                let mut right = vec![internal_record(&[], c)];
                right.extend(records[idx + 1..].iter().cloned());
                (k.to_vec(), records[..idx].to_vec(), right)
            }
            other => return Err(Error::corruption(format!("split of {other:?} root"))),
        };

        let left = s.allocate(
            self.object,
            ty,
            level,
            PageId::INVALID,
            PageId::INVALID,
            ModKind::Smo,
        )?;
        let right = s.allocate(self.object, ty, level, PageId::INVALID, left, ModKind::Smo)?;
        if ty == PageType::BTreeLeaf {
            s.modify(
                left,
                LogPayload::SetNextPage {
                    old: PageId::INVALID,
                    new: right,
                },
                ModKind::Smo,
            )?;
        }
        for (i, rec) in left_records.iter().enumerate() {
            s.modify(
                left,
                LogPayload::InsertRecord {
                    slot: i as u16,
                    bytes: rec.clone(),
                },
                ModKind::Smo,
            )?;
        }
        for (i, rec) in right_records.iter().enumerate() {
            s.modify(
                right,
                LogPayload::InsertRecord {
                    slot: i as u16,
                    bytes: rec.clone(),
                },
                ModKind::Smo,
            )?;
        }
        s.modify(
            self.root,
            LogPayload::Reformat {
                object: self.object,
                ty: PageType::BTreeInternal,
                level: level + 1,
                prev_image: image,
            },
            ModKind::Smo,
        )?;
        s.modify(
            self.root,
            LogPayload::InsertRecord {
                slot: 0,
                bytes: internal_record(&[], left),
            },
            ModKind::Smo,
        )?;
        s.modify(
            self.root,
            LogPayload::InsertRecord {
                slot: 1,
                bytes: internal_record(&sep, right),
            },
            ModKind::Smo,
        )?;
        s.end_smo(anchor)
    }

    // ---- rollback helpers (logical undo, §4.1-A avoided via per-record CLRs)

    /// Logically undo an insert: delete `key` wherever it now lives, logging
    /// a CLR whose `undo_next` is `undo_next`. Missing keys are tolerated
    /// (idempotent crash-resume).
    pub fn rollback_insert<S: Store>(&self, s: &S, key: &[u8], undo_next: Lsn) -> Result<bool> {
        self.delete_mode(s, key, ModKind::Clr { undo_next })
    }

    /// Logically undo a delete: re-insert the logged record (splits allowed),
    /// final insert logged as a CLR.
    pub fn rollback_delete<S: Store>(&self, s: &S, old_rec: &[u8], undo_next: Lsn) -> Result<()> {
        let (key, value) = decode_leaf(old_rec);
        self.insert_mode(s, key, value, ModKind::Clr { undo_next }, true)
    }

    /// Logically undo an update: restore the logged old record under its
    /// key, upserting as needed.
    pub fn rollback_update<S: Store>(&self, s: &S, old_rec: &[u8], undo_next: Lsn) -> Result<()> {
        let (key, value) = decode_leaf(old_rec);
        self.insert_mode(s, key, value, ModKind::Clr { undo_next }, true)
    }

    // ---- diagnostics ---------------------------------------------------------

    /// Every page id reachable in this tree (root first). Used by DROP TABLE
    /// to deallocate, and by tests.
    pub fn collect_pages<S: Store>(&self, s: &S) -> Result<Vec<PageId>> {
        let mut out = Vec::new();
        let mut stack = vec![self.root];
        while let Some(pid) = stack.pop() {
            out.push(pid);
            s.with_page(pid, |p| {
                if p.try_page_type()? == PageType::BTreeInternal {
                    for i in 0..p.slot_count() as usize {
                        let (_, child) = decode_internal(p.record(i)?);
                        stack.push(child);
                    }
                }
                Ok(())
            })?;
        }
        Ok(out)
    }

    /// The leaf page that would hold `key`, discovered by reading
    /// **internal pages only** — the leaf itself is never fetched. Returns
    /// `None` when the root is itself a leaf (nothing unread to name).
    /// The snapshot layer uses this to fan point-read preparation out over
    /// exactly the touched leaves.
    pub fn leaf_for_key_unread<S: Store>(&self, s: &S, key: &[u8]) -> Result<Option<PageId>> {
        let mut cur = self.root;
        loop {
            let step = s.with_page(cur, |p| match p.try_page_type()? {
                PageType::BTreeInternal => {
                    let (_, child) = internal_search(p, key)?;
                    Ok(Some((child, p.level() == 1)))
                }
                PageType::BTreeLeaf => Ok(None),
                other => Err(Error::corruption(format!(
                    "page {:?}: unexpected type {other:?} in tree {:?}",
                    p.page_id(),
                    self.object
                ))),
            })?;
            match step {
                Some((child, is_leaf)) if is_leaf => return Ok(Some(child)),
                Some((child, _)) => cur = child,
                None => return Ok(None),
            }
        }
    }

    /// Page ids of every leaf, discovered by reading **internal pages
    /// only** — the leaves themselves are listed from their parents' child
    /// pointers and never fetched. Against a snapshot store this is what
    /// makes concurrent prepare fan-out worthwhile: the (few) internal
    /// pages are prepared serially by this walk, and the (many) leaves are
    /// left for the snapshot layer's parallel preparation.
    pub fn unread_leaf_pages<S: Store>(&self, s: &S) -> Result<Vec<PageId>> {
        let mut leaves = Vec::new();
        let mut internals = vec![self.root];
        while let Some(pid) = internals.pop() {
            s.with_page(pid, |p| {
                // A root that is itself a leaf has no unread leaves.
                if p.try_page_type()? == PageType::BTreeInternal {
                    for i in 0..p.slot_count() as usize {
                        let (_, child) = decode_internal(p.record(i)?);
                        if p.level() == 1 {
                            leaves.push(child);
                        } else {
                            internals.push(child);
                        }
                    }
                }
                Ok(())
            })?;
        }
        Ok(leaves)
    }

    /// Structural integrity check: key ordering within and across leaves,
    /// separator correctness, sibling links, level consistency. Returns the
    /// number of leaf entries.
    pub fn verify<S: Store>(&self, s: &S) -> Result<usize> {
        let mut count = 0usize;
        let mut last: Option<Vec<u8>> = None;
        self.scan_inner(s, Bound::Unbounded, Bound::Unbounded, |k, _| {
            if let Some(prev) = &last {
                if prev.as_slice() >= k {
                    return Err(Error::corruption(format!(
                        "keys out of order in tree {:?}",
                        self.object
                    )));
                }
            }
            last = Some(k.to_vec());
            count += 1;
            Ok(true)
        })?;
        self.verify_node(s, self.root, &[], None)?;
        Ok(count)
    }

    fn verify_node<S: Store>(
        &self,
        s: &S,
        pid: PageId,
        lower: &[u8],
        upper: Option<&[u8]>,
    ) -> Result<u16> {
        enum Node {
            Leaf(u16),
            Internal(u16, Vec<(Vec<u8>, PageId)>),
        }
        let node = s.with_page(pid, |p| {
            if p.object_id() != self.object {
                return Err(Error::corruption(format!(
                    "page {pid:?} owned by {:?}, expected {:?}",
                    p.object_id(),
                    self.object
                )));
            }
            match p.try_page_type()? {
                PageType::BTreeLeaf => {
                    for i in 0..p.slot_count() as usize {
                        let k = record_key(p, i)?;
                        if k < lower || upper.is_some_and(|u| k >= u) {
                            return Err(Error::corruption(format!(
                                "leaf {pid:?} slot {i} key outside separator bounds"
                            )));
                        }
                    }
                    Ok(Node::Leaf(p.level()))
                }
                PageType::BTreeInternal => {
                    let mut kids = Vec::new();
                    for i in 0..p.slot_count() as usize {
                        let (k, c) = decode_internal(p.record(i)?);
                        kids.push((k.to_vec(), c));
                    }
                    Ok(Node::Internal(p.level(), kids))
                }
                other => Err(Error::corruption(format!("bad page type {other:?}"))),
            }
        })?;
        match node {
            Node::Leaf(level) => {
                if level != 0 {
                    return Err(Error::corruption(format!("leaf {pid:?} at level {level}")));
                }
                Ok(0)
            }
            Node::Internal(level, kids) => {
                if kids.is_empty() || !kids[0].0.is_empty() {
                    return Err(Error::corruption(format!(
                        "internal {pid:?} slot 0 must hold the -inf key"
                    )));
                }
                for w in kids.windows(2) {
                    if !w[0].0.is_empty() && w[0].0 >= w[1].0 {
                        return Err(Error::corruption(format!(
                            "internal {pid:?} separators out of order"
                        )));
                    }
                }
                for (i, (k, child)) in kids.iter().enumerate() {
                    let lo = if i == 0 { lower } else { k.as_slice() };
                    let hi = kids.get(i + 1).map(|(k2, _)| k2.as_slice()).or(upper);
                    let child_level = self.verify_node(s, *child, lo, hi)?;
                    if child_level + 1 != level {
                        return Err(Error::corruption(format!(
                            "level mismatch under {pid:?}: child {child_level}, parent {level}"
                        )));
                    }
                }
                Ok(level)
            }
        }
    }
}

fn check_key(key: &[u8]) -> Result<()> {
    if key.is_empty() {
        return Err(Error::InvalidArg("empty B-Tree key".into()));
    }
    if key.len() > MAX_KEY {
        return Err(Error::RecordTooLarge {
            size: key.len(),
            max: MAX_KEY,
        });
    }
    Ok(())
}

fn above_lo(k: &[u8], lo: &Bound<&[u8]>) -> bool {
    match lo {
        Bound::Included(b) => k >= *b,
        Bound::Excluded(b) => k > *b,
        Bound::Unbounded => true,
    }
}

fn below_hi(k: &[u8], hi: &Bound<&[u8]>) -> bool {
    match hi {
        Bound::Included(b) => k <= *b,
        Bound::Excluded(b) => k < *b,
        Bound::Unbounded => true,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::store::MemStore;
    use std::collections::BTreeMap;
    use std::ops::Bound::*;

    fn key(i: u64) -> Vec<u8> {
        i.to_be_bytes().to_vec()
    }

    fn setup() -> (MemStore, BTree) {
        let s = MemStore::new(2);
        let t = BTree::create(&s, ObjectId(7)).unwrap();
        (s, t)
    }

    #[test]
    fn insert_get_delete_small() {
        let (s, t) = setup();
        for i in [5u64, 1, 9, 3, 7] {
            t.insert(&s, &key(i), format!("v{i}").as_bytes()).unwrap();
        }
        assert_eq!(t.get(&s, &key(3)).unwrap().unwrap(), b"v3");
        assert_eq!(t.get(&s, &key(4)).unwrap(), None);
        assert!(matches!(
            t.insert(&s, &key(3), b"dup"),
            Err(Error::DuplicateKey)
        ));
        t.delete(&s, &key(3)).unwrap();
        assert_eq!(t.get(&s, &key(3)).unwrap(), None);
        assert!(matches!(t.delete(&s, &key(3)), Err(Error::KeyNotFound)));
        assert_eq!(t.verify(&s).unwrap(), 4);
    }

    #[test]
    fn update_in_place_and_relocating() {
        let (s, t) = setup();
        t.insert(&s, &key(1), b"short").unwrap();
        t.update(&s, &key(1), b"SHORT").unwrap();
        assert_eq!(t.get(&s, &key(1)).unwrap().unwrap(), b"SHORT");
        let big = vec![7u8; 1500];
        t.update(&s, &key(1), &big).unwrap();
        assert_eq!(t.get(&s, &key(1)).unwrap().unwrap(), big);
        assert!(matches!(
            t.update(&s, &key(2), b"x"),
            Err(Error::KeyNotFound)
        ));
    }

    #[test]
    fn many_inserts_force_splits_and_stay_sorted() {
        let (s, t) = setup();
        let n = 5000u64;
        // insert in a scrambled order
        let mut order: Vec<u64> = (0..n).collect();
        let mut state = 0x12345678u64;
        for i in (1..order.len()).rev() {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            let j = (state >> 33) as usize % (i + 1);
            order.swap(i, j);
        }
        for &i in &order {
            t.insert(&s, &key(i), format!("value-{i:08}").as_bytes())
                .unwrap();
        }
        assert_eq!(t.verify(&s).unwrap(), n as usize);
        for i in (0..n).step_by(97) {
            assert_eq!(
                t.get(&s, &key(i)).unwrap().unwrap(),
                format!("value-{i:08}").as_bytes()
            );
        }
        // tree actually grew
        let pages = t.collect_pages(&s).unwrap();
        assert!(pages.len() > 10, "expected many pages, got {}", pages.len());
        // root unchanged
        assert!(pages.contains(&t.root));
    }

    #[test]
    fn scan_bounds_ascending_and_descending() {
        let (s, t) = setup();
        for i in 0..500u64 {
            t.insert(&s, &key(i * 2), &key(i * 2)).unwrap(); // even keys only
        }
        let mut got = Vec::new();
        t.scan(
            &s,
            Included(&key(100)[..]),
            Excluded(&key(120)[..]),
            |k, _| {
                got.push(u64::from_be_bytes(k.try_into().unwrap()));
                Ok(true)
            },
        )
        .unwrap();
        assert_eq!(got, vec![100, 102, 104, 106, 108, 110, 112, 114, 116, 118]);

        let mut desc = Vec::new();
        t.scan_desc(
            &s,
            Included(&key(100)[..]),
            Included(&key(110)[..]),
            |k, _| {
                desc.push(u64::from_be_bytes(k.try_into().unwrap()));
                Ok(true)
            },
        )
        .unwrap();
        assert_eq!(desc, vec![110, 108, 106, 104, 102, 100]);

        // early termination
        let mut first = None;
        t.scan(&s, Unbounded, Unbounded, |k, _| {
            first = Some(k.to_vec());
            Ok(false)
        })
        .unwrap();
        assert_eq!(first.unwrap(), key(0));

        // empty range
        let mut none = 0;
        t.scan(
            &s,
            Excluded(&key(100)[..]),
            Excluded(&key(102)[..]),
            |_, _| {
                none += 1;
                Ok(true)
            },
        )
        .unwrap();
        assert_eq!(none, 0);
    }

    #[test]
    fn matches_btreemap_model_under_random_ops() {
        let (s, t) = setup();
        let mut model: BTreeMap<Vec<u8>, Vec<u8>> = BTreeMap::new();
        let mut state = 99u64;
        let mut rng = move || {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            state >> 33
        };
        for _ in 0..4000 {
            let k = key(rng() % 700);
            let op = rng() % 10;
            if op < 5 {
                let v = format!("v{}", rng() % 1000).into_bytes();
                match t.insert(&s, &k, &v) {
                    Ok(()) => {
                        assert!(model.insert(k.clone(), v).is_none());
                    }
                    Err(Error::DuplicateKey) => {
                        assert!(model.contains_key(&k));
                    }
                    Err(e) => panic!("{e}"),
                }
            } else if op < 7 {
                match t.delete(&s, &k) {
                    Ok(()) => {
                        assert!(model.remove(&k).is_some());
                    }
                    Err(Error::KeyNotFound) => assert!(!model.contains_key(&k)),
                    Err(e) => panic!("{e}"),
                }
            } else if op < 8 {
                let v = vec![b'u'; (rng() % 600) as usize];
                match t.update(&s, &k, &v) {
                    Ok(()) => {
                        assert!(model.insert(k.clone(), v).is_some());
                    }
                    Err(Error::KeyNotFound) => assert!(!model.contains_key(&k)),
                    Err(e) => panic!("{e}"),
                }
            } else {
                assert_eq!(t.get(&s, &k).unwrap(), model.get(&k).cloned(), "get {k:?}");
            }
        }
        assert_eq!(t.verify(&s).unwrap(), model.len());
        // full scan equality
        let mut scanned = Vec::new();
        t.scan(&s, Unbounded, Unbounded, |k, v| {
            scanned.push((k.to_vec(), v.to_vec()));
            Ok(true)
        })
        .unwrap();
        let expect: Vec<_> = model.into_iter().collect();
        assert_eq!(scanned, expect);
    }

    #[test]
    fn upsert_overwrites() {
        let (s, t) = setup();
        t.upsert(&s, &key(1), b"a").unwrap();
        t.upsert(&s, &key(1), b"b").unwrap();
        assert_eq!(t.get(&s, &key(1)).unwrap().unwrap(), b"b");
    }

    #[test]
    fn rollback_helpers_invert_operations() {
        let (s, t) = setup();
        for i in 0..100u64 {
            t.insert(&s, &key(i), b"base").unwrap();
        }
        // undo an insert
        t.insert(&s, &key(500), b"new").unwrap();
        assert!(t.rollback_insert(&s, &key(500), Lsn(1)).unwrap());
        assert_eq!(t.get(&s, &key(500)).unwrap(), None);
        // undo of a missing key is tolerated
        assert!(!t.rollback_insert(&s, &key(500), Lsn(1)).unwrap());
        // undo a delete
        let rec = leaf_record(&key(7), b"base");
        t.delete(&s, &key(7)).unwrap();
        t.rollback_delete(&s, &rec, Lsn(1)).unwrap();
        assert_eq!(t.get(&s, &key(7)).unwrap().unwrap(), b"base");
        // undo an update
        let rec = leaf_record(&key(8), b"base");
        t.update(&s, &key(8), b"changed").unwrap();
        t.rollback_update(&s, &rec, Lsn(1)).unwrap();
        assert_eq!(t.get(&s, &key(8)).unwrap().unwrap(), b"base");
        assert_eq!(t.verify(&s).unwrap(), 100);
    }

    #[test]
    fn key_limits_enforced() {
        let (s, t) = setup();
        assert!(t.insert(&s, &[], b"v").is_err());
        assert!(t.insert(&s, &vec![1u8; MAX_KEY + 1], b"v").is_err());
        assert!(t.insert(&s, &key(1), &vec![0u8; MAX_ENTRY]).is_err());
        // max-size entries work and force splits
        for i in 0..40u64 {
            t.insert(&s, &key(i), &vec![b'x'; MAX_ENTRY - 100]).unwrap();
        }
        assert_eq!(t.verify(&s).unwrap(), 40);
    }

    #[test]
    fn large_keys_and_values_split_correctly() {
        let (s, t) = setup();
        for i in 0..200u64 {
            let mut k = vec![b'k'; 200];
            k.extend_from_slice(&key(i));
            t.insert(&s, &k, &vec![b'v'; 500]).unwrap();
        }
        assert_eq!(t.verify(&s).unwrap(), 200);
    }
}
