//! Heap tables: unordered rows addressed by RID `(page, slot)`.
//!
//! The paper stresses that its mechanism "works seamlessly with all of these
//! data structures" (B-Trees, heaps, …) because everything is logged at the
//! data-page level (§7.2). The heap exercises that claim: TPC-C's HISTORY
//! table lives in one.
//!
//! Layout: pages are singly chained via `next_page`; the *first* page's
//! `prev_page` field caches the current tail so appends are O(1). Slots are
//! append-only; deletion tombstones a slot (zero-length record) so RIDs stay
//! stable — which is also what makes rollback of heap operations purely
//! physical.

use crate::store::{ModKind, Store};
use rewind_common::{Error, ObjectId, PageId, Result};
use rewind_pagestore::PageType;
use rewind_wal::LogPayload;

/// Row identifier: page + slot.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Rid {
    /// The page holding the row.
    pub page: PageId,
    /// The slot within the page.
    pub slot: u16,
}

/// A handle to one heap: its owning object and first page.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Heap {
    /// Catalog object this heap belongs to.
    pub object: ObjectId,
    /// The heap's first page (never changes).
    pub first: PageId,
}

impl Heap {
    /// Create a new empty heap for `object`.
    pub fn create<S: Store>(s: &S, object: ObjectId) -> Result<Heap> {
        let first = s.allocate(
            object,
            PageType::Heap,
            0,
            PageId::INVALID,
            PageId::INVALID,
            ModKind::User,
        )?;
        Ok(Heap { object, first })
    }

    fn tail<S: Store>(&self, s: &S) -> Result<PageId> {
        s.with_page(self.first, |p| {
            let t = p.prev_page();
            Ok(if t.is_valid() { t } else { self.first })
        })
    }

    /// Append a row; returns its RID.
    pub fn insert<S: Store>(&self, s: &S, row: &[u8]) -> Result<Rid> {
        s.with_object_latch(self.object, true, || self.insert_inner(s, row))
    }

    /// Append many rows in one call; returns their RIDs in order.
    ///
    /// Rows landing on the same tail page are framed into the log as ONE
    /// batched append (`Store::modify_batch`): slots are append-only, so a
    /// whole run of inserts is known up front — the group-commit fast path
    /// for multi-row DML. Falls back to growing the heap between batches
    /// exactly like single inserts.
    pub fn insert_many<S: Store>(&self, s: &S, rows: &[&[u8]]) -> Result<Vec<Rid>> {
        for row in rows {
            Self::check_row(row)?;
        }
        s.with_object_latch(self.object, true, || {
            let mut out = Vec::with_capacity(rows.len());
            let mut rest = rows;
            while !rest.is_empty() {
                let tail = self.tail(s)?;
                let (base_slot, mut free) =
                    s.with_page(tail, |p| Ok((p.slot_count(), p.free_space())))?;
                // Greedily take the prefix of rows that fits on this page.
                let mut n = 0usize;
                while n < rest.len() {
                    let need = rest[n].len() + rewind_pagestore::page::SLOT_ENTRY_SIZE;
                    if free < need {
                        break;
                    }
                    free -= need;
                    n += 1;
                }
                if n == 0 {
                    self.grow_tail(s, tail)?;
                    continue;
                }
                let payloads: Vec<LogPayload> = rest[..n]
                    .iter()
                    .enumerate()
                    .map(|(i, row)| LogPayload::InsertRecord {
                        slot: base_slot + i as u16,
                        bytes: row.to_vec(),
                    })
                    .collect();
                s.modify_batch(tail, payloads, ModKind::User, rewind_wal::REC_FLAG_HEAP)?;
                out.extend((0..n).map(|i| Rid {
                    page: tail,
                    slot: base_slot + i as u16,
                }));
                rest = &rest[n..];
            }
            Ok(out)
        })
    }

    fn check_row(row: &[u8]) -> Result<()> {
        if row.is_empty() {
            return Err(Error::InvalidArg(
                "empty heap rows are reserved for tombstones".into(),
            ));
        }
        if row.len() > crate::btree::MAX_ENTRY {
            return Err(Error::RecordTooLarge {
                size: row.len(),
                max: crate::btree::MAX_ENTRY,
            });
        }
        Ok(())
    }

    fn insert_inner<S: Store>(&self, s: &S, row: &[u8]) -> Result<Rid> {
        Self::check_row(row)?;
        loop {
            let tail = self.tail(s)?;
            let slot = s.with_page(tail, |p| {
                Ok(if p.can_insert(row.len()) {
                    Some(p.slot_count())
                } else {
                    None
                })
            })?;
            if let Some(slot) = slot {
                s.modify_flagged(
                    tail,
                    LogPayload::InsertRecord {
                        slot,
                        bytes: row.to_vec(),
                    },
                    ModKind::User,
                    rewind_wal::REC_FLAG_HEAP,
                )?;
                return Ok(Rid { page: tail, slot });
            }
            self.grow_tail(s, tail)?;
        }
    }

    /// Chain a fresh page behind `tail` (a structure modification).
    fn grow_tail<S: Store>(&self, s: &S, tail: PageId) -> Result<()> {
        let anchor = s.txn_last_lsn();
        let q = s.allocate(
            self.object,
            PageType::Heap,
            0,
            PageId::INVALID,
            PageId::INVALID,
            ModKind::Smo,
        )?;
        s.modify(
            tail,
            LogPayload::SetNextPage {
                old: PageId::INVALID,
                new: q,
            },
            ModKind::Smo,
        )?;
        let old_tail_hint = s.with_page(self.first, |p| Ok(p.prev_page()))?;
        s.modify(
            self.first,
            LogPayload::SetPrevPage {
                old: old_tail_hint,
                new: q,
            },
            ModKind::Smo,
        )?;
        s.end_smo(anchor)
    }

    /// Read the row at `rid`; `None` if it was deleted (tombstoned).
    pub fn get<S: Store>(&self, s: &S, rid: Rid) -> Result<Option<Vec<u8>>> {
        s.with_object_latch(self.object, false, || self.get_inner(s, rid))
    }

    fn get_inner<S: Store>(&self, s: &S, rid: Rid) -> Result<Option<Vec<u8>>> {
        s.with_page(rid.page, |p| {
            if p.object_id() != self.object || p.try_page_type()? != PageType::Heap {
                return Err(Error::corruption(format!(
                    "RID {rid:?} not in heap {:?}",
                    self.object
                )));
            }
            if rid.slot >= p.slot_count() {
                return Ok(None);
            }
            let rec = p.record(rid.slot as usize)?;
            Ok(if rec.is_empty() {
                None
            } else {
                Some(rec.to_vec())
            })
        })
    }

    /// Delete the row at `rid` (tombstone). Returns the old row.
    pub fn delete<S: Store>(&self, s: &S, rid: Rid) -> Result<Vec<u8>> {
        self.delete_mode(s, rid, ModKind::User)
    }

    /// Delete with an explicit [`ModKind`].
    pub fn delete_mode<S: Store>(&self, s: &S, rid: Rid, kind: ModKind) -> Result<Vec<u8>> {
        s.with_object_latch(self.object, true, || {
            let old = self.get_inner(s, rid)?.ok_or(Error::KeyNotFound)?;
            s.modify_flagged(
                rid.page,
                LogPayload::UpdateRecord {
                    slot: rid.slot,
                    old: old.clone(),
                    new: Vec::new(),
                },
                kind,
                rewind_wal::REC_FLAG_HEAP,
            )?;
            Ok(old)
        })
    }

    /// Overwrite the row at `rid`.
    pub fn update<S: Store>(&self, s: &S, rid: Rid, row: &[u8]) -> Result<()> {
        if row.is_empty() {
            return Err(Error::InvalidArg(
                "empty heap rows are reserved for tombstones".into(),
            ));
        }
        s.with_object_latch(self.object, true, || self.update_inner(s, rid, row))
    }

    fn update_inner<S: Store>(&self, s: &S, rid: Rid, row: &[u8]) -> Result<()> {
        let old = self.get_inner(s, rid)?.ok_or(Error::KeyNotFound)?;
        // May fail with RecordTooLarge if the page is packed; heap updates
        // are same-size in practice (fixed-ish rows). Surface the error.
        s.modify_flagged(
            rid.page,
            LogPayload::UpdateRecord {
                slot: rid.slot,
                old,
                new: row.to_vec(),
            },
            ModKind::User,
            rewind_wal::REC_FLAG_HEAP,
        )?;
        Ok(())
    }

    /// Scan all live rows in RID order.
    pub fn scan<S: Store>(&self, s: &S, f: impl FnMut(Rid, &[u8]) -> Result<bool>) -> Result<()> {
        s.with_object_latch(self.object, false, || self.scan_inner(s, f))
    }

    fn scan_inner<S: Store>(
        &self,
        s: &S,
        mut f: impl FnMut(Rid, &[u8]) -> Result<bool>,
    ) -> Result<()> {
        let mut cur = self.first;
        while cur.is_valid() {
            let (rows, next) = s.with_page(cur, |p| {
                let mut rows = Vec::new();
                for i in 0..p.slot_count() as usize {
                    let rec = p.record(i)?;
                    if !rec.is_empty() {
                        rows.push((i as u16, rec.to_vec()));
                    }
                }
                Ok((rows, p.next_page()))
            })?;
            for (slot, row) in rows {
                if !f(Rid { page: cur, slot }, &row)? {
                    return Ok(());
                }
            }
            cur = next;
        }
        Ok(())
    }

    /// All pages of the heap, in chain order.
    pub fn collect_pages<S: Store>(&self, s: &S) -> Result<Vec<PageId>> {
        let mut out = Vec::new();
        let mut cur = self.first;
        while cur.is_valid() {
            out.push(cur);
            cur = s.with_page(cur, |p| Ok(p.next_page()))?;
        }
        Ok(out)
    }

    /// Number of live rows.
    pub fn count<S: Store>(&self, s: &S) -> Result<usize> {
        let mut n = 0;
        self.scan(s, |_, _| {
            n += 1;
            Ok(true)
        })?;
        Ok(n)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::store::MemStore;

    fn setup() -> (MemStore, Heap) {
        let s = MemStore::new(2);
        let h = Heap::create(&s, ObjectId(9)).unwrap();
        (s, h)
    }

    #[test]
    fn insert_get_delete() {
        let (s, h) = setup();
        let r1 = h.insert(&s, b"alpha").unwrap();
        let r2 = h.insert(&s, b"beta").unwrap();
        assert_eq!(h.get(&s, r1).unwrap().unwrap(), b"alpha");
        assert_eq!(h.get(&s, r2).unwrap().unwrap(), b"beta");
        let old = h.delete(&s, r1).unwrap();
        assert_eq!(old, b"alpha");
        assert_eq!(h.get(&s, r1).unwrap(), None);
        assert!(matches!(h.delete(&s, r1), Err(Error::KeyNotFound)));
        // RIDs stay stable after deletion
        assert_eq!(h.get(&s, r2).unwrap().unwrap(), b"beta");
        assert_eq!(h.count(&s).unwrap(), 1);
    }

    #[test]
    fn grows_across_pages_with_o1_appends() {
        let (s, h) = setup();
        let row = vec![9u8; 1000];
        let mut rids = Vec::new();
        for _ in 0..100 {
            rids.push(h.insert(&s, &row).unwrap());
        }
        let pages = h.collect_pages(&s).unwrap();
        assert!(pages.len() > 10, "expected ~14 pages, got {}", pages.len());
        for rid in &rids {
            assert_eq!(h.get(&s, *rid).unwrap().unwrap(), row);
        }
        assert_eq!(h.count(&s).unwrap(), 100);
        // tail hint points at the last page
        let tail = h.tail(&s).unwrap();
        assert_eq!(tail, *pages.last().unwrap());
    }

    #[test]
    fn scan_skips_tombstones_in_rid_order() {
        let (s, h) = setup();
        let mut rids = Vec::new();
        for i in 0..30u64 {
            rids.push(h.insert(&s, format!("row{i}").as_bytes()).unwrap());
        }
        for rid in rids.iter().step_by(3) {
            h.delete(&s, *rid).unwrap();
        }
        let mut seen = Vec::new();
        h.scan(&s, |rid, row| {
            seen.push((rid, row.to_vec()));
            Ok(true)
        })
        .unwrap();
        assert_eq!(seen.len(), 20);
        let mut sorted = seen.clone();
        sorted.sort();
        assert_eq!(seen, sorted, "scan must be in RID order");
    }

    #[test]
    fn update_roundtrip() {
        let (s, h) = setup();
        let rid = h.insert(&s, b"before").unwrap();
        h.update(&s, rid, b"after!").unwrap();
        assert_eq!(h.get(&s, rid).unwrap().unwrap(), b"after!");
        assert!(h.update(&s, rid, b"").is_err());
        assert!(h.insert(&s, b"").is_err());
    }

    #[test]
    fn foreign_rid_rejected() {
        let s = MemStore::new(2);
        let h1 = Heap::create(&s, ObjectId(1)).unwrap();
        let h2 = Heap::create(&s, ObjectId(2)).unwrap();
        let rid = h1.insert(&s, b"mine").unwrap();
        assert!(h2.get(&s, rid).is_err());
    }
}
