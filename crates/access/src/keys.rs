//! Memcomparable key encoding.
//!
//! B-Tree keys are byte strings compared with `memcmp`; this module encodes
//! (composite) typed values such that byte order equals logical order:
//!
//! * `U64` → big-endian;
//! * `I64` → big-endian with the sign bit flipped;
//! * `F64` → IEEE bits, negatives bit-inverted, positives sign-flipped;
//! * `Str`/`Bytes` → `0x00` escaped as `0x00 0xFF`, terminated `0x00 0x00`,
//!   so prefixes sort first and embedded zeroes are preserved;
//! * `Null` sorts before every value (presence byte).

use crate::value::Value;
use rewind_common::{Error, Result};

/// Append the memcomparable encoding of `v` to `out`.
pub fn encode_value(out: &mut Vec<u8>, v: &Value) -> Result<()> {
    match v {
        Value::Null => out.push(0x00),
        Value::U64(x) => {
            out.push(0x01);
            out.extend_from_slice(&x.to_be_bytes());
        }
        Value::I64(x) => {
            out.push(0x01);
            out.extend_from_slice(&((*x as u64) ^ (1 << 63)).to_be_bytes());
        }
        Value::F64(x) => {
            out.push(0x01);
            let bits = x.to_bits();
            let ordered = if bits & (1 << 63) != 0 {
                !bits
            } else {
                bits | (1 << 63)
            };
            out.extend_from_slice(&ordered.to_be_bytes());
        }
        Value::Str(s) => {
            out.push(0x01);
            encode_bytes(out, s.as_bytes());
        }
        Value::Bytes(b) => {
            out.push(0x01);
            encode_bytes(out, b);
        }
        Value::Bool(b) => {
            out.push(0x01);
            out.push(*b as u8);
        }
    }
    Ok(())
}

fn encode_bytes(out: &mut Vec<u8>, b: &[u8]) {
    for &byte in b {
        if byte == 0x00 {
            out.push(0x00);
            out.push(0xFF);
        } else {
            out.push(byte);
        }
    }
    out.push(0x00);
    out.push(0x00);
}

/// Encode a composite key from `values`.
pub fn encode_key(values: &[&Value]) -> Result<Vec<u8>> {
    let mut out = Vec::with_capacity(values.len() * 9);
    for v in values {
        encode_value(&mut out, v)?;
    }
    if out.is_empty() {
        return Err(Error::InvalidArg("empty key".into()));
    }
    Ok(out)
}

/// Encode a composite key from owned values.
pub fn encode_key_owned(values: &[Value]) -> Result<Vec<u8>> {
    let refs: Vec<&Value> = values.iter().collect();
    encode_key(&refs)
}

/// The smallest key strictly greater than every key having `prefix` —
/// i.e. `prefix` followed by `0xFF` padding. Used for prefix range scans.
pub fn prefix_upper_bound(prefix: &[u8]) -> Vec<u8> {
    let mut hi = prefix.to_vec();
    hi.extend_from_slice(&[0xFF; 9]);
    hi
}

#[cfg(test)]
mod tests {
    use super::*;

    fn enc1(v: &Value) -> Vec<u8> {
        encode_key(&[v]).unwrap()
    }

    #[test]
    fn u64_ordering() {
        let vals = [0u64, 1, 255, 256, 1 << 32, u64::MAX];
        for w in vals.windows(2) {
            assert!(
                enc1(&Value::U64(w[0])) < enc1(&Value::U64(w[1])),
                "{} < {}",
                w[0],
                w[1]
            );
        }
    }

    #[test]
    fn i64_ordering_across_zero() {
        let vals = [i64::MIN, -100, -1, 0, 1, 100, i64::MAX];
        for w in vals.windows(2) {
            assert!(
                enc1(&Value::I64(w[0])) < enc1(&Value::I64(w[1])),
                "{} < {}",
                w[0],
                w[1]
            );
        }
    }

    #[test]
    fn f64_ordering() {
        let vals = [
            f64::NEG_INFINITY,
            -1e10,
            -1.5,
            -0.0,
            0.5,
            2.0,
            1e300,
            f64::INFINITY,
        ];
        for w in vals.windows(2) {
            assert!(
                enc1(&Value::F64(w[0])) <= enc1(&Value::F64(w[1])),
                "{} <= {}",
                w[0],
                w[1]
            );
        }
    }

    #[test]
    fn string_ordering_with_embedded_nulls_and_prefixes() {
        let cases = [
            ("", "a"),
            ("a", "aa"),
            ("a", "b"),
            ("ab", "b"),
            ("a\0", "a\0\0"),
            ("a\0b", "a\x01"),
            ("BAR", "BARR"),
        ];
        for (a, b) in cases {
            assert!(enc1(&Value::str(a)) < enc1(&Value::str(b)), "{a:?} < {b:?}");
        }
    }

    #[test]
    fn null_sorts_first() {
        assert!(enc1(&Value::Null) < enc1(&Value::U64(0)));
        assert!(enc1(&Value::Null) < enc1(&Value::str("")));
        assert!(enc1(&Value::Null) < enc1(&Value::I64(i64::MIN)));
    }

    #[test]
    fn composite_component_order_dominates() {
        let a = encode_key(&[&Value::U64(1), &Value::U64(999)]).unwrap();
        let b = encode_key(&[&Value::U64(2), &Value::U64(0)]).unwrap();
        assert!(a < b);
        // string component doesn't bleed into the next
        let c = encode_key(&[&Value::str("ab"), &Value::U64(1)]).unwrap();
        let d = encode_key(&[&Value::str("a"), &Value::U64(255)]).unwrap();
        assert!(d < c);
    }

    #[test]
    fn prefix_upper_bound_captures_prefix_range() {
        let p = encode_key(&[&Value::U64(5)]).unwrap();
        let lo = {
            let mut k = p.clone();
            k.extend(enc1(&Value::U64(0)));
            k
        };
        let hi_real = {
            let mut k = p.clone();
            k.extend(enc1(&Value::U64(u64::MAX)));
            k
        };
        let ub = prefix_upper_bound(&p);
        assert!(lo >= p);
        assert!(hi_real < ub);
        let outside = encode_key(&[&Value::U64(6)]).unwrap();
        assert!(outside > ub);
    }

    #[test]
    fn empty_key_rejected() {
        assert!(encode_key(&[]).is_err());
    }

    #[test]
    fn bool_ordering() {
        assert!(enc1(&Value::Bool(false)) < enc1(&Value::Bool(true)));
    }
}
