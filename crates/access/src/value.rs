//! Typed values, schemas and the row codec.
//!
//! Rows are self-describing byte strings (a type tag per value), so decoding
//! never needs the schema — which matters when reading catalog rows from an
//! as-of snapshot whose schema is itself part of the unwound state.

use rewind_common::codec::{ByteReader, ByteWriter};
use rewind_common::{Error, Result};
use std::fmt;

/// A dynamically-typed column value.
#[derive(Clone, Debug, PartialEq)]
pub enum Value {
    /// SQL NULL.
    Null,
    /// Unsigned 64-bit integer.
    U64(u64),
    /// Signed 64-bit integer.
    I64(i64),
    /// IEEE-754 double.
    F64(f64),
    /// UTF-8 string.
    Str(String),
    /// Raw bytes.
    Bytes(Vec<u8>),
    /// Boolean.
    Bool(bool),
}

impl Value {
    /// Shorthand: string value from a `&str`.
    pub fn str(s: &str) -> Value {
        Value::Str(s.to_string())
    }

    /// The value's type, or `None` for NULL.
    pub fn data_type(&self) -> Option<DataType> {
        Some(match self {
            Value::Null => return None,
            Value::U64(_) => DataType::U64,
            Value::I64(_) => DataType::I64,
            Value::F64(_) => DataType::F64,
            Value::Str(_) => DataType::Str,
            Value::Bytes(_) => DataType::Bytes,
            Value::Bool(_) => DataType::Bool,
        })
    }

    /// Extract a u64, failing on other types.
    pub fn as_u64(&self) -> Result<u64> {
        match self {
            Value::U64(v) => Ok(*v),
            other => Err(Error::InvalidArg(format!("expected u64, got {other:?}"))),
        }
    }

    /// Extract an i64, failing on other types.
    pub fn as_i64(&self) -> Result<i64> {
        match self {
            Value::I64(v) => Ok(*v),
            other => Err(Error::InvalidArg(format!("expected i64, got {other:?}"))),
        }
    }

    /// Extract an f64, failing on other types.
    pub fn as_f64(&self) -> Result<f64> {
        match self {
            Value::F64(v) => Ok(*v),
            other => Err(Error::InvalidArg(format!("expected f64, got {other:?}"))),
        }
    }

    /// Extract a string slice, failing on other types.
    pub fn as_str(&self) -> Result<&str> {
        match self {
            Value::Str(v) => Ok(v),
            other => Err(Error::InvalidArg(format!("expected str, got {other:?}"))),
        }
    }

    /// Extract a bool, failing on other types.
    pub fn as_bool(&self) -> Result<bool> {
        match self {
            Value::Bool(v) => Ok(*v),
            other => Err(Error::InvalidArg(format!("expected bool, got {other:?}"))),
        }
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Null => write!(f, "NULL"),
            Value::U64(v) => write!(f, "{v}"),
            Value::I64(v) => write!(f, "{v}"),
            Value::F64(v) => write!(f, "{v}"),
            Value::Str(v) => write!(f, "'{v}'"),
            Value::Bytes(v) => write!(f, "x'{}'", v.len()),
            Value::Bool(v) => write!(f, "{v}"),
        }
    }
}

/// A column's declared type.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
#[repr(u8)]
pub enum DataType {
    /// Unsigned 64-bit integer.
    U64 = 1,
    /// Signed 64-bit integer.
    I64 = 2,
    /// IEEE-754 double.
    F64 = 3,
    /// UTF-8 string.
    Str = 4,
    /// Raw bytes.
    Bytes = 5,
    /// Boolean.
    Bool = 6,
}

impl DataType {
    /// Decode from the on-disk tag.
    pub fn from_u8(v: u8) -> Result<DataType> {
        Ok(match v {
            1 => DataType::U64,
            2 => DataType::I64,
            3 => DataType::F64,
            4 => DataType::Str,
            5 => DataType::Bytes,
            6 => DataType::Bool,
            other => return Err(Error::corruption(format!("unknown data type tag {other}"))),
        })
    }
}

/// A column definition.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Column {
    /// Column name.
    pub name: String,
    /// Declared type.
    pub ty: DataType,
}

impl Column {
    /// Convenience constructor.
    pub fn new(name: &str, ty: DataType) -> Column {
        Column {
            name: name.to_string(),
            ty,
        }
    }
}

/// A table schema: ordered columns plus the indices of the primary-key
/// columns.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Schema {
    /// All columns, in storage order.
    pub columns: Vec<Column>,
    /// Indices (into `columns`) of the primary-key columns, in key order.
    pub key: Vec<usize>,
}

impl Schema {
    /// Build a schema; `key` columns are named.
    pub fn new(columns: Vec<Column>, key_names: &[&str]) -> Result<Schema> {
        let mut key = Vec::with_capacity(key_names.len());
        for kn in key_names {
            let idx = columns
                .iter()
                .position(|c| c.name == *kn)
                .ok_or_else(|| Error::InvalidArg(format!("key column '{kn}' not in schema")))?;
            key.push(idx);
        }
        if key.is_empty() {
            return Err(Error::InvalidArg(
                "schema needs at least one key column".into(),
            ));
        }
        Ok(Schema { columns, key })
    }

    /// Index of a named column.
    pub fn column_index(&self, name: &str) -> Result<usize> {
        self.columns
            .iter()
            .position(|c| c.name == name)
            .ok_or_else(|| Error::InvalidArg(format!("no column '{name}'")))
    }

    /// Extract the key values from a full row.
    pub fn key_values<'a>(&self, row: &'a [Value]) -> Result<Vec<&'a Value>> {
        if row.len() != self.columns.len() {
            return Err(Error::InvalidArg(format!(
                "row has {} values, schema has {} columns",
                row.len(),
                self.columns.len()
            )));
        }
        Ok(self.key.iter().map(|&i| &row[i]).collect())
    }

    /// Check a row's types against the schema.
    pub fn check_row(&self, row: &[Value]) -> Result<()> {
        if row.len() != self.columns.len() {
            return Err(Error::InvalidArg(format!(
                "row has {} values, schema has {} columns",
                row.len(),
                self.columns.len()
            )));
        }
        for (v, c) in row.iter().zip(&self.columns) {
            if let Some(ty) = v.data_type() {
                if ty != c.ty {
                    return Err(Error::InvalidArg(format!(
                        "column '{}' expects {:?}, got {v:?}",
                        c.name, c.ty
                    )));
                }
            }
        }
        Ok(())
    }
}

/// A decoded row.
pub type Row = Vec<Value>;

/// Encode a row as self-describing bytes.
pub fn encode_row(row: &[Value]) -> Vec<u8> {
    let mut w = ByteWriter::with_capacity(16 + row.len() * 8);
    w.put_u16(row.len() as u16);
    for v in row {
        match v {
            Value::Null => w.put_u8(0),
            Value::U64(x) => {
                w.put_u8(1);
                w.put_u64(*x);
            }
            Value::I64(x) => {
                w.put_u8(2);
                w.put_i64(*x);
            }
            Value::F64(x) => {
                w.put_u8(3);
                w.put_f64(*x);
            }
            Value::Str(s) => {
                w.put_u8(4);
                w.put_str(s);
            }
            Value::Bytes(b) => {
                w.put_u8(5);
                w.put_bytes(b);
            }
            Value::Bool(b) => {
                w.put_u8(6);
                w.put_u8(*b as u8);
            }
        }
    }
    w.into_bytes()
}

/// Decode a row previously encoded with [`encode_row`].
pub fn decode_row(bytes: &[u8]) -> Result<Row> {
    let mut r = ByteReader::new(bytes);
    let n = r.get_u16()? as usize;
    let mut row = Vec::with_capacity(n);
    for _ in 0..n {
        let tag = r.get_u8()?;
        row.push(match tag {
            0 => Value::Null,
            1 => Value::U64(r.get_u64()?),
            2 => Value::I64(r.get_i64()?),
            3 => Value::F64(r.get_f64()?),
            4 => Value::Str(r.get_str()?.to_string()),
            5 => Value::Bytes(r.get_bytes()?.to_vec()),
            6 => Value::Bool(r.get_u8()? != 0),
            other => return Err(Error::corruption(format!("unknown value tag {other}"))),
        });
    }
    Ok(row)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_row() -> Row {
        vec![
            Value::U64(42),
            Value::I64(-7),
            Value::F64(2.75),
            Value::str("hello"),
            Value::Bytes(vec![1, 2, 3]),
            Value::Bool(true),
            Value::Null,
        ]
    }

    #[test]
    fn row_roundtrip() {
        let row = sample_row();
        let bytes = encode_row(&row);
        assert_eq!(decode_row(&bytes).unwrap(), row);
        assert_eq!(decode_row(&encode_row(&[])).unwrap(), Vec::<Value>::new());
    }

    #[test]
    fn decode_rejects_garbage() {
        assert!(decode_row(&[9, 9, 9]).is_err());
        let mut bytes = encode_row(&sample_row());
        bytes.truncate(bytes.len() - 1);
        assert!(decode_row(&bytes).is_err());
    }

    #[test]
    fn schema_key_extraction() {
        let schema = Schema::new(
            vec![
                Column::new("w_id", DataType::U64),
                Column::new("d_id", DataType::U64),
                Column::new("name", DataType::Str),
            ],
            &["w_id", "d_id"],
        )
        .unwrap();
        let row = vec![Value::U64(3), Value::U64(9), Value::str("x")];
        let keys = schema.key_values(&row).unwrap();
        assert_eq!(keys, vec![&Value::U64(3), &Value::U64(9)]);
        schema.check_row(&row).unwrap();
        // wrong arity
        assert!(schema.check_row(&row[..2]).is_err());
        // wrong type
        let bad = vec![Value::U64(3), Value::str("nope"), Value::str("x")];
        assert!(schema.check_row(&bad).is_err());
        // nulls pass type checks
        let with_null = vec![Value::U64(3), Value::U64(9), Value::Null];
        schema.check_row(&with_null).unwrap();
    }

    #[test]
    fn schema_rejects_unknown_key() {
        let err = Schema::new(vec![Column::new("a", DataType::U64)], &["b"]);
        assert!(err.is_err());
        let err = Schema::new(vec![Column::new("a", DataType::U64)], &[]);
        assert!(err.is_err());
    }

    #[test]
    fn value_accessors() {
        assert_eq!(Value::U64(5).as_u64().unwrap(), 5);
        assert!(Value::U64(5).as_str().is_err());
        assert_eq!(Value::str("s").as_str().unwrap(), "s");
        assert!(Value::Bool(true).as_bool().unwrap());
        assert_eq!(Value::I64(-2).as_i64().unwrap(), -2);
        assert_eq!(Value::F64(1.5).as_f64().unwrap(), 1.5);
        assert_eq!(Value::Null.data_type(), None);
    }
}
