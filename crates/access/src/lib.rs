//! Access methods: logged B-Trees, heaps, the allocation manager and the
//! row/key codecs.
//!
//! Everything here is written against the [`Store`] abstraction — "give me a
//! latched page" / "apply this logged modification" — rather than against
//! the live engine directly. That is the paper's architectural point (§3,
//! §5.3): because as-of snapshots implement the same page-access interface
//! (side file → primary file → `PreparePageAsOf`), *all* access methods,
//! including the system catalog and allocation maps, work unchanged on a
//! snapshot. "To them snapshot database appears like a regular read-only
//! database."
//!
//! Structure modifications (page splits) are logged as nested top actions:
//! their records carry full undo information — including the deletes
//! (§4.2-3) — and are terminated by a CLR whose `undo_next` jumps over them,
//! so rollback never unpicks a completed split while a crash mid-split is
//! physically undone.

pub mod allocator;
pub mod btree;
pub mod heap;
pub mod keys;
pub mod store;
pub mod value;

pub use btree::BTree;
pub use heap::Heap;
pub use store::{ModKind, Store};
pub use value::{Column, DataType, Row, Schema, Value};
