//! The [`Store`] abstraction: how access methods touch pages.
//!
//! Three implementations exist in the system:
//!
//! * the **live engine** (in `rewind-core`): pages come from the buffer
//!   pool; `modify` appends a log record (building the per-page and
//!   per-transaction chains), applies it, marks the frame dirty, and
//!   maintains the FPI cadence (§6.1);
//! * the **as-of snapshot** (in `rewind-snapshot`): pages come from the side
//!   file or from the primary — read through the buffer manager with a
//!   shared latch — followed by `PreparePageAsOf` (§5.3); `modify` is
//!   rejected — snapshots are read-only databases;
//! * the **snapshot mutator** (also `rewind-snapshot`): the backdoor used by
//!   snapshot recovery's logical undo (§5.2) — modifications are applied
//!   directly to side-file pages *without logging*, because the snapshot is
//!   a throwaway replica.
//!
//! A mock in-memory implementation ([`MemStore`]) lives here for unit
//! testing the access methods in isolation.

use rewind_common::{Error, Lsn, ObjectId, PageId, Result};
use rewind_pagestore::{Page, PageType};
use rewind_wal::LogPayload;

/// How a modification relates to transactions and recovery.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ModKind {
    /// A regular user-transaction modification.
    User,
    /// Part of a structure modification (nested top action): flagged as a
    /// system record; skipped by logical undo once the SMO completes.
    Smo,
    /// A compensation record written during rollback; `undo_next` points at
    /// the next record of the transaction to undo.
    Clr {
        /// Next record to undo after this compensation.
        undo_next: Lsn,
    },
}

/// Page access + logged modification, as seen by the access methods.
///
/// Latching contract: `with_page` holds at most a **shared** page latch for
/// the duration of `f` and releases it before returning; `modify` takes the
/// page latch **exclusively**. Implementations must guarantee `f` sees a
/// consistent image of exactly the requested page (the sharded buffer pool
/// revalidates the frame after latching and retries if crash simulation
/// invalidated it). Closures must not re-enter the store for the same page
/// — latches are not re-entrant.
pub trait Store {
    /// Run `f` with a (latched) immutable view of page `pid`.
    fn with_page<R>(&self, pid: PageId, f: impl FnOnce(&Page) -> Result<R>) -> Result<R>;

    /// Apply the logged modification `payload` to page `pid`.
    fn modify(&self, pid: PageId, payload: LogPayload, kind: ModKind) -> Result<Lsn> {
        self.modify_flagged(pid, payload, kind, 0)
    }

    /// [`Store::modify`] with extra record flags (e.g.
    /// [`rewind_wal::REC_FLAG_HEAP`] so lock reacquisition can classify the
    /// row without reading the page).
    fn modify_flagged(
        &self,
        pid: PageId,
        payload: LogPayload,
        kind: ModKind,
        extra_flags: u8,
    ) -> Result<Lsn>;

    /// Apply several logged row modifications to page `pid` as one batch.
    ///
    /// On logging stores the whole batch is framed into the WAL under a
    /// single writer-mutex acquisition (group commit's append half) with the
    /// per-transaction and per-page chains threaded through the batch in
    /// order. Payloads must be valid *in sequence* against the evolving page
    /// (e.g. heap appends at consecutive slots); this is the caller's
    /// contract, checked only as each payload is applied. Returns the
    /// assigned LSNs in order. The default implementation simply loops
    /// [`Store::modify_flagged`].
    fn modify_batch(
        &self,
        pid: PageId,
        payloads: Vec<LogPayload>,
        kind: ModKind,
        extra_flags: u8,
    ) -> Result<Vec<Lsn>> {
        payloads
            .into_iter()
            .map(|p| self.modify_flagged(pid, p, kind, extra_flags))
            .collect()
    }

    /// Allocate and format a fresh page. `kind` attributes the allocation's
    /// log records: [`ModKind::Smo`] inside structure modifications (not
    /// individually rolled back), [`ModKind::User`] for directly compensable
    /// allocations (CREATE TABLE roots).
    fn allocate(
        &self,
        object: ObjectId,
        ty: PageType,
        level: u16,
        next: PageId,
        prev: PageId,
        kind: ModKind,
    ) -> Result<PageId>;

    /// Deallocate page `pid` (clears the allocation bit; page content is
    /// deliberately left in place — the paper's undo machinery depends on
    /// it, §4.2-1).
    fn free_page(&self, pid: PageId, kind: ModKind) -> Result<()>;

    /// Run `f` holding the structure latch of `object` (shared for reads,
    /// exclusive for anything that may change the tree shape). Access
    /// methods call this around whole operations; page latches alone do not
    /// protect multi-page structure changes. Re-entry on the same object is
    /// not allowed.
    fn with_object_latch<R>(
        &self,
        object: ObjectId,
        exclusive: bool,
        f: impl FnOnce() -> Result<R>,
    ) -> Result<R>;

    /// Close out a nested top action: log a CLR whose `undo_next` is
    /// `undo_next`, so rollback jumps over the completed SMO. No-op on
    /// stores that do not log.
    fn end_smo(&self, undo_next: Lsn) -> Result<()>;

    /// The current transaction's most recent LSN (the `undo_next` target for
    /// [`Store::end_smo`]). Null on stores that do not log.
    fn txn_last_lsn(&self) -> Lsn;

    /// Whether this store accepts modifications.
    fn writable(&self) -> bool;
}

/// A trivial in-memory store for unit-testing access methods: pages live in
/// a vector, "logging" just applies payloads with a fake monotonically
/// increasing LSN. No WAL, no buffer pool.
pub struct MemStore {
    pages: parking_lot::RwLock<Vec<Page>>,
    next_lsn: std::sync::atomic::AtomicU64,
}

impl MemStore {
    /// A store with `n` zeroed pages.
    pub fn new(n: usize) -> Self {
        MemStore {
            pages: parking_lot::RwLock::new((0..n).map(|_| Page::zeroed()).collect()),
            next_lsn: std::sync::atomic::AtomicU64::new(Lsn::FIRST.0),
        }
    }

    fn next_lsn(&self) -> Lsn {
        Lsn(self
            .next_lsn
            .fetch_add(64, std::sync::atomic::Ordering::Relaxed))
    }
}

impl Store for MemStore {
    fn with_page<R>(&self, pid: PageId, f: impl FnOnce(&Page) -> Result<R>) -> Result<R> {
        let pages = self.pages.read();
        let p = pages.get(pid.0 as usize).ok_or(Error::InvalidPage(pid))?;
        f(p)
    }

    fn modify_flagged(
        &self,
        pid: PageId,
        payload: LogPayload,
        _kind: ModKind,
        _extra_flags: u8,
    ) -> Result<Lsn> {
        let lsn = self.next_lsn();
        let mut pages = self.pages.write();
        let p = pages
            .get_mut(pid.0 as usize)
            .ok_or(Error::InvalidPage(pid))?;
        payload.precheck(p)?;
        payload.redo(p, pid, lsn)?;
        Ok(lsn)
    }

    fn allocate(
        &self,
        object: ObjectId,
        ty: PageType,
        level: u16,
        next: PageId,
        prev: PageId,
        _kind: ModKind,
    ) -> Result<PageId> {
        let mut pages = self.pages.write();
        // naive: first Free page, else grow
        let idx = pages
            .iter()
            .enumerate()
            .skip(1)
            .find(|(_, p)| p.page_type() == PageType::Free)
            .map(|(i, _)| i)
            .unwrap_or_else(|| {
                pages.push(Page::zeroed());
                pages.len() - 1
            });
        let pid = PageId(idx as u64);
        let p = &mut pages[idx];
        p.format(pid, object, ty);
        p.set_level(level);
        p.set_next_page(next);
        p.set_prev_page(prev);
        Ok(pid)
    }

    fn free_page(&self, pid: PageId, _kind: ModKind) -> Result<()> {
        let mut pages = self.pages.write();
        let p = pages
            .get_mut(pid.0 as usize)
            .ok_or(Error::InvalidPage(pid))?;
        p.format(pid, ObjectId::NONE, PageType::Free);
        Ok(())
    }

    fn with_object_latch<R>(
        &self,
        _object: ObjectId,
        _exclusive: bool,
        f: impl FnOnce() -> Result<R>,
    ) -> Result<R> {
        f()
    }

    fn end_smo(&self, _undo_next: Lsn) -> Result<()> {
        Ok(())
    }

    fn txn_last_lsn(&self) -> Lsn {
        Lsn::NULL
    }

    fn writable(&self) -> bool {
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn memstore_modify_applies_payloads() {
        let s = MemStore::new(4);
        let pid = s
            .allocate(
                ObjectId(1),
                PageType::BTreeLeaf,
                0,
                PageId::INVALID,
                PageId::INVALID,
                ModKind::User,
            )
            .unwrap();
        s.modify(
            pid,
            LogPayload::InsertRecord {
                slot: 0,
                bytes: b"x".to_vec(),
            },
            ModKind::User,
        )
        .unwrap();
        s.with_page(pid, |p| {
            assert_eq!(p.record(0).unwrap(), b"x");
            assert!(p.page_lsn().is_valid());
            Ok(())
        })
        .unwrap();
        s.free_page(pid, ModKind::User).unwrap();
        s.with_page(pid, |p| {
            assert_eq!(p.page_type(), PageType::Free);
            Ok(())
        })
        .unwrap();
    }
}
