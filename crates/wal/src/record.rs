//! Log record format: header, payloads, serialization, and redo/undo
//! application.
//!
//! Payloads are *physiological*: they name a slot on a page and carry both
//! redo and undo byte images. That makes every record independently
//! undoable, which is the property the paper's page-oriented undo relies on
//! (§4.1-B) — including CLRs and the delete half of structure modifications
//! (§4.2).

use rewind_common::codec::{ByteReader, ByteWriter};
use rewind_common::{Error, Lsn, ObjectId, PageId, Result, Timestamp, TxnId};
use rewind_pagestore::page::{Page, PageType, PAGE_SIZE};

/// Record flag: this record is a compensation log record written during
/// rollback; `undo_next` points at the next record of the transaction to
/// undo.
pub const REC_FLAG_CLR: u8 = 0b0000_0001;
/// Record flag: this record belongs to a system transaction (structure
/// modification); system transactions commit immediately and are never
/// logically undone.
pub const REC_FLAG_SYSTEM: u8 = 0b0000_0010;
/// Record flag: this record modifies a heap page (rows addressed by RID).
/// Lets lock reacquisition (§5.2) choose the right lock key without reading
/// the page or the catalog.
pub const REC_FLAG_HEAP: u8 = 0b0000_0100;

/// Alias for the raw flags byte on a record.
pub type RecordFlags = u8;

/// An entry of the active-transaction table in a checkpoint record.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct TxnTableEntry {
    /// The transaction id.
    pub txn: TxnId,
    /// LSN of the transaction's first record.
    pub first_lsn: Lsn,
    /// LSN of the transaction's most recent record.
    pub last_lsn: Lsn,
}

/// An entry of the dirty-page table in a checkpoint record.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct DptEntry {
    /// The dirty page.
    pub page: PageId,
    /// Earliest LSN whose effects may not be on disk for this page.
    pub rec_lsn: Lsn,
}

/// Body of a checkpoint-end record.
#[derive(Clone, Debug, PartialEq, Eq, Default)]
pub struct CheckpointBody {
    /// Wall-clock time at which the checkpoint was taken.
    pub at: Timestamp,
    /// LSN of the matching checkpoint-begin record.
    pub begin_lsn: Lsn,
    /// Active transactions at checkpoint time.
    pub att: Vec<TxnTableEntry>,
    /// Dirty pages at checkpoint time.
    pub dpt: Vec<DptEntry>,
}

/// The operation described by a log record.
///
/// Page-modifying payloads implement [`LogPayload::redo`] (apply forward,
/// stamping the page LSN) and [`LogPayload::undo`] (apply the exact reverse
/// to the page contents; LSN bookkeeping is the caller's job, see
/// `PreparePageAsOf`). [`LogPayload::compensation`] produces the payload a
/// CLR would carry to logically undo this record.
#[derive(Clone, Debug, PartialEq)]
pub enum LogPayload {
    /// Transaction committed at the given wall-clock time. SplitLSN search
    /// (§5.1) keys off these stamps.
    Commit {
        /// Commit wall-clock time.
        at: Timestamp,
    },
    /// Transaction rollback has begun.
    Abort,
    /// Transaction is fully finished (rolled back or post-commit cleanup).
    End,
    /// (Re)format a page as a fresh, empty page of `ty` for `object`.
    /// Marks the beginning of a per-page chain (Fig. 1). Undoing it erases
    /// the page back to the unallocated state; if the page had a previous
    /// incarnation, the immediately preceding `Preformat` record restores it.
    Format {
        /// Owning object.
        object: ObjectId,
        /// New page type.
        ty: PageType,
        /// B-Tree level (0 for leaves/heaps).
        level: u16,
        /// Right sibling to link, or invalid.
        next: PageId,
        /// Left sibling to link, or invalid.
        prev: PageId,
    },
    /// The paper's preformat record (§4.2-1, Fig. 2): logged when a page is
    /// *re*-allocated, carrying the previous content of the page so the old
    /// chain both stays reachable and can be restored.
    Preformat {
        /// Full image of the page's previous incarnation.
        prev_image: Box<[u8; PAGE_SIZE]>,
    },
    /// Reformat a page that had live content (e.g. the root during a root
    /// split, or table truncation), carrying the old image as undo info.
    Reformat {
        /// Owning object after the reformat.
        object: ObjectId,
        /// New page type.
        ty: PageType,
        /// New B-Tree level.
        level: u16,
        /// Full previous image (undo information).
        prev_image: Box<[u8; PAGE_SIZE]>,
    },
    /// Insert `bytes` as a new record at `slot`.
    InsertRecord {
        /// Target slot index.
        slot: u16,
        /// Record bytes.
        bytes: Vec<u8>,
    },
    /// Delete the record at `slot`. `old` is the undo information — present
    /// even when this delete is half of a structure-modification move
    /// (§4.2-3) or inside a CLR (§4.2-2).
    DeleteRecord {
        /// Target slot index.
        slot: u16,
        /// The deleted record bytes (undo information).
        old: Vec<u8>,
    },
    /// Replace the record at `slot` with `new`; `old` is the undo info.
    UpdateRecord {
        /// Target slot index.
        slot: u16,
        /// Previous record bytes (undo information).
        old: Vec<u8>,
        /// New record bytes.
        new: Vec<u8>,
    },
    /// Change the page's right-sibling pointer.
    SetNextPage {
        /// Previous value (undo information).
        old: PageId,
        /// New value.
        new: PageId,
    },
    /// Change the page's left-sibling pointer.
    SetPrevPage {
        /// Previous value (undo information).
        old: PageId,
        /// New value.
        new: PageId,
    },
    /// Change one two-bit entry on an allocation-map page. Allocation state
    /// is unwound by the same mechanism as data (§3).
    AllocSet {
        /// Bit-pair index within the map page.
        index: u32,
        /// Previous packed state (undo information).
        old: u8,
        /// New packed state.
        new: u8,
    },
    /// Overwrite bytes in the body of the boot page.
    BootWrite {
        /// Offset within the page body.
        offset: u16,
        /// Previous bytes (undo information).
        old: Vec<u8>,
        /// New bytes.
        new: Vec<u8>,
    },
    /// Periodic full page image (§6.1): lets `PreparePageAsOf` skip from the
    /// page header straight to the first image after the target LSN instead
    /// of undoing every modification in between. Images chain backwards via
    /// `prev_fpi_lsn`.
    FullPageImage {
        /// Previous FPI for this page, or null.
        prev_fpi_lsn: Lsn,
        /// The page image. Its `pageLSN`/`lastFpiLSN` header fields are
        /// patched to this record's LSN when applied.
        image: Box<[u8; PAGE_SIZE]>,
    },
    /// Replace the whole page image, carrying both directions as full
    /// images. Used only by compensation records that must undo a
    /// `Reformat` (rollback of a partial root split) — the paper's rule that
    /// CLRs carry undo information (§4.2-2) makes even this CLR physically
    /// undoable by `PreparePageAsOf`.
    RestoreImage {
        /// Image before this record (undo information).
        old: Box<[u8; PAGE_SIZE]>,
        /// Image after this record.
        new: Box<[u8; PAGE_SIZE]>,
    },
    /// Checkpoint begin marker, stamped with wall-clock time (used to narrow
    /// the SplitLSN search, §5.1).
    CheckpointBegin {
        /// Wall-clock time.
        at: Timestamp,
    },
    /// Checkpoint end: the fuzzy-checkpoint tables.
    CheckpointEnd(CheckpointBody),
}

impl LogPayload {
    /// The payload's kind tag.
    pub fn kind(&self) -> PayloadKind {
        match self {
            LogPayload::Commit { .. } => PayloadKind::Commit,
            LogPayload::Abort => PayloadKind::Abort,
            LogPayload::End => PayloadKind::End,
            LogPayload::Format { .. } => PayloadKind::Format,
            LogPayload::Preformat { .. } => PayloadKind::Preformat,
            LogPayload::Reformat { .. } => PayloadKind::Reformat,
            LogPayload::InsertRecord { .. } => PayloadKind::InsertRecord,
            LogPayload::DeleteRecord { .. } => PayloadKind::DeleteRecord,
            LogPayload::UpdateRecord { .. } => PayloadKind::UpdateRecord,
            LogPayload::SetNextPage { .. } => PayloadKind::SetNextPage,
            LogPayload::SetPrevPage { .. } => PayloadKind::SetPrevPage,
            LogPayload::AllocSet { .. } => PayloadKind::AllocSet,
            LogPayload::BootWrite { .. } => PayloadKind::BootWrite,
            LogPayload::FullPageImage { .. } => PayloadKind::FullPageImage,
            LogPayload::CheckpointBegin { .. } => PayloadKind::CheckpointBegin,
            LogPayload::CheckpointEnd(_) => PayloadKind::CheckpointEnd,
            LogPayload::RestoreImage { .. } => PayloadKind::RestoreImage,
        }
    }

    /// Whether this payload modifies a page (and therefore participates in
    /// per-page chains).
    pub fn is_page_op(&self) -> bool {
        self.kind().is_page_op()
    }

    /// Overwrite the wall-clock stamp carried by commit/checkpoint payloads;
    /// a no-op for every other kind. `LogManager::append_stamped` uses this
    /// to assign the stamp *under the writer mutex*, so stamps are monotone
    /// in LSN order — the invariant the SplitLSN binary search (§5.1) and
    /// the checkpoint directory rely on.
    pub fn set_stamp(&mut self, at: Timestamp) {
        match self {
            LogPayload::Commit { at: a } | LogPayload::CheckpointBegin { at: a } => *a = at,
            LogPayload::CheckpointEnd(body) => body.at = at,
            _ => {}
        }
    }

    /// Borrow this payload as a zero-copy view, or `None` for
    /// [`LogPayload::CheckpointEnd`] (whose view form wraps raw bytes).
    /// Views carry the single implementation of redo/undo/compensation.
    pub fn as_view(&self) -> Option<LogPayloadView<'_>> {
        Some(match self {
            LogPayload::Commit { at } => LogPayloadView::Commit { at: *at },
            LogPayload::Abort => LogPayloadView::Abort,
            LogPayload::End => LogPayloadView::End,
            LogPayload::Format {
                object,
                ty,
                level,
                next,
                prev,
            } => LogPayloadView::Format {
                object: *object,
                ty: *ty,
                level: *level,
                next: *next,
                prev: *prev,
            },
            LogPayload::Preformat { prev_image } => LogPayloadView::Preformat { prev_image },
            LogPayload::Reformat {
                object,
                ty,
                level,
                prev_image,
            } => LogPayloadView::Reformat {
                object: *object,
                ty: *ty,
                level: *level,
                prev_image,
            },
            LogPayload::InsertRecord { slot, bytes } => {
                LogPayloadView::InsertRecord { slot: *slot, bytes }
            }
            LogPayload::DeleteRecord { slot, old } => {
                LogPayloadView::DeleteRecord { slot: *slot, old }
            }
            LogPayload::UpdateRecord { slot, old, new } => LogPayloadView::UpdateRecord {
                slot: *slot,
                old,
                new,
            },
            LogPayload::SetNextPage { old, new } => LogPayloadView::SetNextPage {
                old: *old,
                new: *new,
            },
            LogPayload::SetPrevPage { old, new } => LogPayloadView::SetPrevPage {
                old: *old,
                new: *new,
            },
            LogPayload::AllocSet { index, old, new } => LogPayloadView::AllocSet {
                index: *index,
                old: *old,
                new: *new,
            },
            LogPayload::BootWrite { offset, old, new } => LogPayloadView::BootWrite {
                offset: *offset,
                old,
                new,
            },
            LogPayload::FullPageImage {
                prev_fpi_lsn,
                image,
            } => LogPayloadView::FullPageImage {
                prev_fpi_lsn: *prev_fpi_lsn,
                image,
            },
            LogPayload::RestoreImage { old, new } => LogPayloadView::RestoreImage { old, new },
            LogPayload::CheckpointBegin { at } => LogPayloadView::CheckpointBegin { at: *at },
            LogPayload::CheckpointEnd(_) => return None,
        })
    }

    /// Apply the forward (redo) effect to `page` and stamp its pageLSN.
    ///
    /// Callers must have established that the record applies (ARIES redo
    /// compares `page.page_lsn() < lsn`; normal forward processing always
    /// applies).
    pub fn redo(&self, page: &mut Page, page_id: PageId, lsn: Lsn) -> Result<()> {
        match self.as_view() {
            Some(v) => v.redo(page, page_id, lsn),
            None => Err(Error::Internal(format!(
                "redo of non-page payload {self:?}"
            ))),
        }
    }

    /// Validate that the forward effect would apply cleanly to `page`,
    /// *without* modifying anything. Stores call this before appending the
    /// record so the log never contains a record whose apply failed.
    pub fn precheck(&self, page: &Page) -> Result<()> {
        match self {
            LogPayload::InsertRecord { slot, bytes } => {
                let n = page.slot_count() as usize;
                if *slot as usize > n {
                    return Err(Error::Internal(format!(
                        "insert at slot {slot} past end ({n})"
                    )));
                }
                if !page.can_insert(bytes.len()) {
                    return Err(Error::RecordTooLarge {
                        size: bytes.len(),
                        max: page.free_space(),
                    });
                }
            }
            LogPayload::DeleteRecord { slot, .. } if *slot >= page.slot_count() => {
                return Err(Error::Internal(format!("delete of missing slot {slot}")));
            }
            LogPayload::UpdateRecord { slot, new, .. } => {
                if *slot >= page.slot_count() {
                    return Err(Error::Internal(format!("update of missing slot {slot}")));
                }
                let old_len = page.record(*slot as usize)?.len();
                if new.len() > old_len && new.len() - old_len > page.free_space() {
                    return Err(Error::RecordTooLarge {
                        size: new.len(),
                        max: old_len + page.free_space(),
                    });
                }
            }
            LogPayload::AllocSet { index, .. }
                if *index as usize >= rewind_pagestore::alloc::MAP_CAPACITY =>
            {
                return Err(Error::Internal(format!("alloc index {index} out of range")));
            }
            LogPayload::BootWrite { offset, new, .. }
                if *offset as usize + new.len() > page.body().len() =>
            {
                return Err(Error::Internal("boot write out of range".into()));
            }
            _ => {}
        }
        Ok(())
    }

    /// Apply the reverse effect to `page` contents.
    ///
    /// This is the physical-undo step of `PreparePageAsOf` (paper Fig. 3):
    /// the caller walks the per-page chain and manages the final pageLSN.
    pub fn undo(&self, page: &mut Page, page_id: PageId) -> Result<()> {
        match self.as_view() {
            Some(v) => v.undo(page, page_id),
            None => Err(Error::Internal(format!(
                "undo of non-page payload {self:?}"
            ))),
        }
    }

    /// The payload a compensation log record carries to logically undo this
    /// record during rollback, or `None` if the record is not logically
    /// undoable (txn markers, checkpoints, FPIs, preformats).
    pub fn compensation(&self) -> Option<LogPayload> {
        self.as_view()?.compensation()
    }

    fn tag(&self) -> u8 {
        match self {
            LogPayload::Commit { .. } => 1,
            LogPayload::Abort => 2,
            LogPayload::End => 3,
            LogPayload::Format { .. } => 4,
            LogPayload::Preformat { .. } => 5,
            LogPayload::Reformat { .. } => 6,
            LogPayload::InsertRecord { .. } => 7,
            LogPayload::DeleteRecord { .. } => 8,
            LogPayload::UpdateRecord { .. } => 9,
            LogPayload::SetNextPage { .. } => 10,
            LogPayload::SetPrevPage { .. } => 11,
            LogPayload::AllocSet { .. } => 12,
            LogPayload::BootWrite { .. } => 13,
            LogPayload::FullPageImage { .. } => 14,
            LogPayload::CheckpointBegin { .. } => 15,
            LogPayload::CheckpointEnd(_) => 16,
            LogPayload::RestoreImage { .. } => 17,
        }
    }

    fn encode_into(&self, w: &mut ByteWriter) {
        w.put_u8(self.tag());
        match self {
            LogPayload::Commit { at } => w.put_u64(at.as_micros()),
            LogPayload::Abort | LogPayload::End => {}
            LogPayload::Format {
                object,
                ty,
                level,
                next,
                prev,
            } => {
                w.put_u64(object.0);
                w.put_u16(*ty as u16);
                w.put_u16(*level);
                w.put_u64(next.0);
                w.put_u64(prev.0);
            }
            LogPayload::Preformat { prev_image } => w.put_raw(&prev_image[..]),
            LogPayload::Reformat {
                object,
                ty,
                level,
                prev_image,
            } => {
                w.put_u64(object.0);
                w.put_u16(*ty as u16);
                w.put_u16(*level);
                w.put_raw(&prev_image[..]);
            }
            LogPayload::InsertRecord { slot, bytes } => {
                w.put_u16(*slot);
                w.put_bytes(bytes);
            }
            LogPayload::DeleteRecord { slot, old } => {
                w.put_u16(*slot);
                w.put_bytes(old);
            }
            LogPayload::UpdateRecord { slot, old, new } => {
                w.put_u16(*slot);
                w.put_bytes(old);
                w.put_bytes(new);
            }
            LogPayload::SetNextPage { old, new } | LogPayload::SetPrevPage { old, new } => {
                w.put_u64(old.0);
                w.put_u64(new.0);
            }
            LogPayload::AllocSet { index, old, new } => {
                w.put_u32(*index);
                w.put_u8(*old);
                w.put_u8(*new);
            }
            LogPayload::BootWrite { offset, old, new } => {
                w.put_u16(*offset);
                w.put_bytes(old);
                w.put_bytes(new);
            }
            LogPayload::FullPageImage {
                prev_fpi_lsn,
                image,
            } => {
                w.put_u64(prev_fpi_lsn.0);
                w.put_raw(&image[..]);
            }
            LogPayload::RestoreImage { old, new } => {
                w.put_raw(&old[..]);
                w.put_raw(&new[..]);
            }
            LogPayload::CheckpointBegin { at } => w.put_u64(at.as_micros()),
            LogPayload::CheckpointEnd(body) => {
                w.put_u64(body.at.as_micros());
                w.put_u64(body.begin_lsn.0);
                w.put_u32(body.att.len() as u32);
                for e in &body.att {
                    w.put_u64(e.txn.0);
                    w.put_u64(e.first_lsn.0);
                    w.put_u64(e.last_lsn.0);
                }
                w.put_u32(body.dpt.len() as u32);
                for e in &body.dpt {
                    w.put_u64(e.page.0);
                    w.put_u64(e.rec_lsn.0);
                }
            }
        }
    }

    fn decode_from(r: &mut ByteReader<'_>) -> Result<LogPayload> {
        let tag = r.get_u8()?;
        Ok(match tag {
            1 => LogPayload::Commit {
                at: Timestamp::from_micros(r.get_u64()?),
            },
            2 => LogPayload::Abort,
            3 => LogPayload::End,
            4 => LogPayload::Format {
                object: ObjectId(r.get_u64()?),
                ty: PageType::from_u16(r.get_u16()?)?,
                level: r.get_u16()?,
                next: PageId(r.get_u64()?),
                prev: PageId(r.get_u64()?),
            },
            5 => LogPayload::Preformat {
                prev_image: read_image(r)?,
            },
            6 => LogPayload::Reformat {
                object: ObjectId(r.get_u64()?),
                ty: PageType::from_u16(r.get_u16()?)?,
                level: r.get_u16()?,
                prev_image: read_image(r)?,
            },
            7 => LogPayload::InsertRecord {
                slot: r.get_u16()?,
                bytes: r.get_bytes()?.to_vec(),
            },
            8 => LogPayload::DeleteRecord {
                slot: r.get_u16()?,
                old: r.get_bytes()?.to_vec(),
            },
            9 => LogPayload::UpdateRecord {
                slot: r.get_u16()?,
                old: r.get_bytes()?.to_vec(),
                new: r.get_bytes()?.to_vec(),
            },
            10 => LogPayload::SetNextPage {
                old: PageId(r.get_u64()?),
                new: PageId(r.get_u64()?),
            },
            11 => LogPayload::SetPrevPage {
                old: PageId(r.get_u64()?),
                new: PageId(r.get_u64()?),
            },
            12 => LogPayload::AllocSet {
                index: r.get_u32()?,
                old: r.get_u8()?,
                new: r.get_u8()?,
            },
            13 => LogPayload::BootWrite {
                offset: r.get_u16()?,
                old: r.get_bytes()?.to_vec(),
                new: r.get_bytes()?.to_vec(),
            },
            14 => LogPayload::FullPageImage {
                prev_fpi_lsn: Lsn(r.get_u64()?),
                image: read_image(r)?,
            },
            17 => LogPayload::RestoreImage {
                old: read_image(r)?,
                new: read_image(r)?,
            },
            15 => LogPayload::CheckpointBegin {
                at: Timestamp::from_micros(r.get_u64()?),
            },
            16 => LogPayload::CheckpointEnd(decode_checkpoint_body(r)?),
            other => {
                return Err(Error::corruption(format!(
                    "unknown log payload tag {other}"
                )))
            }
        })
    }
}

fn decode_checkpoint_body(r: &mut ByteReader<'_>) -> Result<CheckpointBody> {
    let at = Timestamp::from_micros(r.get_u64()?);
    let begin_lsn = Lsn(r.get_u64()?);
    let natt = r.get_u32()? as usize;
    let mut att = Vec::with_capacity(natt.min(r.remaining() / 24));
    for _ in 0..natt {
        att.push(TxnTableEntry {
            txn: TxnId(r.get_u64()?),
            first_lsn: Lsn(r.get_u64()?),
            last_lsn: Lsn(r.get_u64()?),
        });
    }
    let ndpt = r.get_u32()? as usize;
    let mut dpt = Vec::with_capacity(ndpt.min(r.remaining() / 16));
    for _ in 0..ndpt {
        dpt.push(DptEntry {
            page: PageId(r.get_u64()?),
            rec_lsn: Lsn(r.get_u64()?),
        });
    }
    Ok(CheckpointBody {
        at,
        begin_lsn,
        att,
        dpt,
    })
}

fn read_image(r: &mut ByteReader<'_>) -> Result<Box<[u8; PAGE_SIZE]>> {
    let raw = r.get_raw(PAGE_SIZE)?;
    let mut img = Box::new([0u8; PAGE_SIZE]);
    img.copy_from_slice(raw);
    Ok(img)
}

fn read_image_ref<'a>(r: &mut ByteReader<'a>) -> Result<&'a [u8; PAGE_SIZE]> {
    let raw = r.get_raw(PAGE_SIZE)?;
    raw.try_into()
        .map_err(|_| Error::log_corruption(Lsn(0), "page image shorter than PAGE_SIZE"))
}

/// The kind of operation a log record carries, decodable from the record's
/// fixed-offset tag byte without touching the payload body. Discriminants
/// match the serialized payload tags.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
#[repr(u8)]
pub enum PayloadKind {
    /// [`LogPayload::Commit`].
    Commit = 1,
    /// [`LogPayload::Abort`].
    Abort = 2,
    /// [`LogPayload::End`].
    End = 3,
    /// [`LogPayload::Format`].
    Format = 4,
    /// [`LogPayload::Preformat`].
    Preformat = 5,
    /// [`LogPayload::Reformat`].
    Reformat = 6,
    /// [`LogPayload::InsertRecord`].
    InsertRecord = 7,
    /// [`LogPayload::DeleteRecord`].
    DeleteRecord = 8,
    /// [`LogPayload::UpdateRecord`].
    UpdateRecord = 9,
    /// [`LogPayload::SetNextPage`].
    SetNextPage = 10,
    /// [`LogPayload::SetPrevPage`].
    SetPrevPage = 11,
    /// [`LogPayload::AllocSet`].
    AllocSet = 12,
    /// [`LogPayload::BootWrite`].
    BootWrite = 13,
    /// [`LogPayload::FullPageImage`].
    FullPageImage = 14,
    /// [`LogPayload::CheckpointBegin`].
    CheckpointBegin = 15,
    /// [`LogPayload::CheckpointEnd`].
    CheckpointEnd = 16,
    /// [`LogPayload::RestoreImage`].
    RestoreImage = 17,
}

impl PayloadKind {
    /// Decode a serialized payload tag.
    pub fn from_tag(tag: u8) -> Result<PayloadKind> {
        Ok(match tag {
            1 => PayloadKind::Commit,
            2 => PayloadKind::Abort,
            3 => PayloadKind::End,
            4 => PayloadKind::Format,
            5 => PayloadKind::Preformat,
            6 => PayloadKind::Reformat,
            7 => PayloadKind::InsertRecord,
            8 => PayloadKind::DeleteRecord,
            9 => PayloadKind::UpdateRecord,
            10 => PayloadKind::SetNextPage,
            11 => PayloadKind::SetPrevPage,
            12 => PayloadKind::AllocSet,
            13 => PayloadKind::BootWrite,
            14 => PayloadKind::FullPageImage,
            15 => PayloadKind::CheckpointBegin,
            16 => PayloadKind::CheckpointEnd,
            17 => PayloadKind::RestoreImage,
            other => {
                return Err(Error::corruption(format!(
                    "unknown log payload tag {other}"
                )))
            }
        })
    }

    /// Whether records of this kind modify a page (and therefore participate
    /// in per-page chains).
    pub fn is_page_op(self) -> bool {
        !matches!(
            self,
            PayloadKind::Commit
                | PayloadKind::Abort
                | PayloadKind::End
                | PayloadKind::CheckpointBegin
                | PayloadKind::CheckpointEnd
        )
    }
}

/// A borrowed, allocation-free decode of a log-record payload. The single
/// implementation of redo/undo/compensation lives here; the owned
/// [`LogPayload`] delegates through [`LogPayload::as_view`].
///
/// Byte payloads (`bytes`/`old`/`new`) and page images borrow straight from
/// the log segment the record was read from, so a chain walk that undoes a
/// record never copies its payload.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum LogPayloadView<'a> {
    /// See [`LogPayload::Commit`].
    Commit {
        /// Commit wall-clock time.
        at: Timestamp,
    },
    /// See [`LogPayload::Abort`].
    Abort,
    /// See [`LogPayload::End`].
    End,
    /// See [`LogPayload::Format`].
    Format {
        /// Owning object.
        object: ObjectId,
        /// New page type.
        ty: PageType,
        /// B-Tree level.
        level: u16,
        /// Right sibling.
        next: PageId,
        /// Left sibling.
        prev: PageId,
    },
    /// See [`LogPayload::Preformat`].
    Preformat {
        /// Borrowed image of the page's previous incarnation.
        prev_image: &'a [u8; PAGE_SIZE],
    },
    /// See [`LogPayload::Reformat`].
    Reformat {
        /// Owning object after the reformat.
        object: ObjectId,
        /// New page type.
        ty: PageType,
        /// New B-Tree level.
        level: u16,
        /// Borrowed previous image (undo information).
        prev_image: &'a [u8; PAGE_SIZE],
    },
    /// See [`LogPayload::InsertRecord`].
    InsertRecord {
        /// Target slot index.
        slot: u16,
        /// Borrowed record bytes.
        bytes: &'a [u8],
    },
    /// See [`LogPayload::DeleteRecord`].
    DeleteRecord {
        /// Target slot index.
        slot: u16,
        /// Borrowed deleted-record bytes (undo information).
        old: &'a [u8],
    },
    /// See [`LogPayload::UpdateRecord`].
    UpdateRecord {
        /// Target slot index.
        slot: u16,
        /// Borrowed previous bytes (undo information).
        old: &'a [u8],
        /// Borrowed new bytes.
        new: &'a [u8],
    },
    /// See [`LogPayload::SetNextPage`].
    SetNextPage {
        /// Previous value.
        old: PageId,
        /// New value.
        new: PageId,
    },
    /// See [`LogPayload::SetPrevPage`].
    SetPrevPage {
        /// Previous value.
        old: PageId,
        /// New value.
        new: PageId,
    },
    /// See [`LogPayload::AllocSet`].
    AllocSet {
        /// Bit-pair index within the map page.
        index: u32,
        /// Previous packed state.
        old: u8,
        /// New packed state.
        new: u8,
    },
    /// See [`LogPayload::BootWrite`].
    BootWrite {
        /// Offset within the page body.
        offset: u16,
        /// Borrowed previous bytes.
        old: &'a [u8],
        /// Borrowed new bytes.
        new: &'a [u8],
    },
    /// See [`LogPayload::FullPageImage`].
    FullPageImage {
        /// Previous FPI for this page, or null.
        prev_fpi_lsn: Lsn,
        /// Borrowed page image.
        image: &'a [u8; PAGE_SIZE],
    },
    /// See [`LogPayload::RestoreImage`].
    RestoreImage {
        /// Borrowed image before this record.
        old: &'a [u8; PAGE_SIZE],
        /// Borrowed image after this record.
        new: &'a [u8; PAGE_SIZE],
    },
    /// See [`LogPayload::CheckpointBegin`].
    CheckpointBegin {
        /// Wall-clock time.
        at: Timestamp,
    },
    /// See [`LogPayload::CheckpointEnd`]. The fuzzy-checkpoint tables stay
    /// serialized; [`LogPayloadView::to_owned_payload`] parses them.
    CheckpointEnd {
        /// The serialized checkpoint body.
        raw: &'a [u8],
    },
}

impl<'a> LogPayloadView<'a> {
    /// Decode a payload view from the payload portion of a record body
    /// (everything after the fixed header). Borrows byte payloads and page
    /// images from `bytes`; allocates nothing.
    pub fn decode(bytes: &'a [u8]) -> Result<LogPayloadView<'a>> {
        let mut r = ByteReader::new(bytes);
        let view = match PayloadKind::from_tag(r.get_u8()?)? {
            PayloadKind::Commit => LogPayloadView::Commit {
                at: Timestamp::from_micros(r.get_u64()?),
            },
            PayloadKind::Abort => LogPayloadView::Abort,
            PayloadKind::End => LogPayloadView::End,
            PayloadKind::Format => LogPayloadView::Format {
                object: ObjectId(r.get_u64()?),
                ty: PageType::from_u16(r.get_u16()?)?,
                level: r.get_u16()?,
                next: PageId(r.get_u64()?),
                prev: PageId(r.get_u64()?),
            },
            PayloadKind::Preformat => LogPayloadView::Preformat {
                prev_image: read_image_ref(&mut r)?,
            },
            PayloadKind::Reformat => LogPayloadView::Reformat {
                object: ObjectId(r.get_u64()?),
                ty: PageType::from_u16(r.get_u16()?)?,
                level: r.get_u16()?,
                prev_image: read_image_ref(&mut r)?,
            },
            PayloadKind::InsertRecord => LogPayloadView::InsertRecord {
                slot: r.get_u16()?,
                bytes: r.get_bytes()?,
            },
            PayloadKind::DeleteRecord => LogPayloadView::DeleteRecord {
                slot: r.get_u16()?,
                old: r.get_bytes()?,
            },
            PayloadKind::UpdateRecord => LogPayloadView::UpdateRecord {
                slot: r.get_u16()?,
                old: r.get_bytes()?,
                new: r.get_bytes()?,
            },
            PayloadKind::SetNextPage => LogPayloadView::SetNextPage {
                old: PageId(r.get_u64()?),
                new: PageId(r.get_u64()?),
            },
            PayloadKind::SetPrevPage => LogPayloadView::SetPrevPage {
                old: PageId(r.get_u64()?),
                new: PageId(r.get_u64()?),
            },
            PayloadKind::AllocSet => LogPayloadView::AllocSet {
                index: r.get_u32()?,
                old: r.get_u8()?,
                new: r.get_u8()?,
            },
            PayloadKind::BootWrite => LogPayloadView::BootWrite {
                offset: r.get_u16()?,
                old: r.get_bytes()?,
                new: r.get_bytes()?,
            },
            PayloadKind::FullPageImage => LogPayloadView::FullPageImage {
                prev_fpi_lsn: Lsn(r.get_u64()?),
                image: read_image_ref(&mut r)?,
            },
            PayloadKind::RestoreImage => LogPayloadView::RestoreImage {
                old: read_image_ref(&mut r)?,
                new: read_image_ref(&mut r)?,
            },
            PayloadKind::CheckpointBegin => LogPayloadView::CheckpointBegin {
                at: Timestamp::from_micros(r.get_u64()?),
            },
            PayloadKind::CheckpointEnd => {
                // Keep the tables serialized; consume everything.
                let raw = r.get_raw(r.remaining())?;
                LogPayloadView::CheckpointEnd { raw }
            }
        };
        if !r.is_exhausted() {
            return Err(Error::corruption(format!(
                "{} trailing bytes after log payload",
                r.remaining()
            )));
        }
        Ok(view)
    }

    /// The payload's kind tag.
    pub fn kind(&self) -> PayloadKind {
        match self {
            LogPayloadView::Commit { .. } => PayloadKind::Commit,
            LogPayloadView::Abort => PayloadKind::Abort,
            LogPayloadView::End => PayloadKind::End,
            LogPayloadView::Format { .. } => PayloadKind::Format,
            LogPayloadView::Preformat { .. } => PayloadKind::Preformat,
            LogPayloadView::Reformat { .. } => PayloadKind::Reformat,
            LogPayloadView::InsertRecord { .. } => PayloadKind::InsertRecord,
            LogPayloadView::DeleteRecord { .. } => PayloadKind::DeleteRecord,
            LogPayloadView::UpdateRecord { .. } => PayloadKind::UpdateRecord,
            LogPayloadView::SetNextPage { .. } => PayloadKind::SetNextPage,
            LogPayloadView::SetPrevPage { .. } => PayloadKind::SetPrevPage,
            LogPayloadView::AllocSet { .. } => PayloadKind::AllocSet,
            LogPayloadView::BootWrite { .. } => PayloadKind::BootWrite,
            LogPayloadView::FullPageImage { .. } => PayloadKind::FullPageImage,
            LogPayloadView::RestoreImage { .. } => PayloadKind::RestoreImage,
            LogPayloadView::CheckpointBegin { .. } => PayloadKind::CheckpointBegin,
            LogPayloadView::CheckpointEnd { .. } => PayloadKind::CheckpointEnd,
        }
    }

    /// Whether this payload modifies a page.
    pub fn is_page_op(&self) -> bool {
        self.kind().is_page_op()
    }

    /// The wall-clock stamp of a commit or checkpoint-begin record, the two
    /// kinds the SplitLSN search keys off.
    pub fn time_stamp(&self) -> Option<Timestamp> {
        match self {
            LogPayloadView::Commit { at } | LogPayloadView::CheckpointBegin { at } => Some(*at),
            _ => None,
        }
    }

    /// Materialize an owned [`LogPayload`] (the only step that copies).
    pub fn to_owned_payload(&self) -> Result<LogPayload> {
        Ok(match *self {
            LogPayloadView::Commit { at } => LogPayload::Commit { at },
            LogPayloadView::Abort => LogPayload::Abort,
            LogPayloadView::End => LogPayload::End,
            LogPayloadView::Format {
                object,
                ty,
                level,
                next,
                prev,
            } => LogPayload::Format {
                object,
                ty,
                level,
                next,
                prev,
            },
            LogPayloadView::Preformat { prev_image } => LogPayload::Preformat {
                prev_image: Box::new(*prev_image),
            },
            LogPayloadView::Reformat {
                object,
                ty,
                level,
                prev_image,
            } => LogPayload::Reformat {
                object,
                ty,
                level,
                prev_image: Box::new(*prev_image),
            },
            LogPayloadView::InsertRecord { slot, bytes } => LogPayload::InsertRecord {
                slot,
                bytes: bytes.to_vec(),
            },
            LogPayloadView::DeleteRecord { slot, old } => LogPayload::DeleteRecord {
                slot,
                old: old.to_vec(),
            },
            LogPayloadView::UpdateRecord { slot, old, new } => LogPayload::UpdateRecord {
                slot,
                old: old.to_vec(),
                new: new.to_vec(),
            },
            LogPayloadView::SetNextPage { old, new } => LogPayload::SetNextPage { old, new },
            LogPayloadView::SetPrevPage { old, new } => LogPayload::SetPrevPage { old, new },
            LogPayloadView::AllocSet { index, old, new } => {
                LogPayload::AllocSet { index, old, new }
            }
            LogPayloadView::BootWrite { offset, old, new } => LogPayload::BootWrite {
                offset,
                old: old.to_vec(),
                new: new.to_vec(),
            },
            LogPayloadView::FullPageImage {
                prev_fpi_lsn,
                image,
            } => LogPayload::FullPageImage {
                prev_fpi_lsn,
                image: Box::new(*image),
            },
            LogPayloadView::RestoreImage { old, new } => LogPayload::RestoreImage {
                old: Box::new(*old),
                new: Box::new(*new),
            },
            LogPayloadView::CheckpointBegin { at } => LogPayload::CheckpointBegin { at },
            LogPayloadView::CheckpointEnd { raw } => {
                let mut r = ByteReader::new(raw);
                let body = decode_checkpoint_body(&mut r)?;
                if !r.is_exhausted() {
                    return Err(Error::corruption(format!(
                        "{} trailing bytes after checkpoint body",
                        r.remaining()
                    )));
                }
                LogPayload::CheckpointEnd(body)
            }
        })
    }

    /// Apply the forward (redo) effect to `page` and stamp its pageLSN,
    /// straight from the borrowed payload.
    pub fn redo(&self, page: &mut Page, page_id: PageId, lsn: Lsn) -> Result<()> {
        match *self {
            LogPayloadView::Format {
                object,
                ty,
                level,
                next,
                prev,
            } => {
                page.format(page_id, object, ty);
                page.set_level(level);
                page.set_next_page(next);
                page.set_prev_page(prev);
            }
            LogPayloadView::Preformat { .. } => {
                // The preformat record *stores* the previous content; its
                // forward effect is nil (the page is about to be formatted).
            }
            LogPayloadView::Reformat {
                object, ty, level, ..
            } => {
                page.format(page_id, object, ty);
                page.set_level(level);
            }
            LogPayloadView::InsertRecord { slot, bytes } => {
                page.insert_record(slot as usize, bytes)?;
            }
            LogPayloadView::DeleteRecord { slot, .. } => {
                page.remove_record(slot as usize)?;
            }
            LogPayloadView::UpdateRecord { slot, new, .. } => {
                page.replace_record(slot as usize, new)?;
            }
            LogPayloadView::SetNextPage { new, .. } => page.set_next_page(new),
            LogPayloadView::SetPrevPage { new, .. } => page.set_prev_page(new),
            LogPayloadView::AllocSet { index, new, .. } => {
                rewind_pagestore::alloc::set_state(
                    page,
                    index as usize,
                    rewind_pagestore::alloc::PageState::from_bits(new),
                )?;
            }
            LogPayloadView::BootWrite { offset, new, .. } => {
                let off = offset as usize;
                page.body_mut()[off..off + new.len()].copy_from_slice(new);
            }
            LogPayloadView::FullPageImage { image, .. } => {
                page.restore_image(image);
                page.set_last_fpi_lsn(lsn);
            }
            LogPayloadView::RestoreImage { new, .. } => {
                page.restore_image(new);
            }
            _ => {
                return Err(Error::Internal(format!(
                    "redo of non-page payload {self:?}"
                )));
            }
        }
        page.set_page_lsn(lsn);
        Ok(())
    }

    /// Apply the reverse effect to `page` contents, straight from the
    /// borrowed payload. See [`LogPayload::undo`].
    pub fn undo(&self, page: &mut Page, page_id: PageId) -> Result<()> {
        match *self {
            LogPayloadView::Format { .. } => {
                // Back to "unallocated": erase. If a previous incarnation
                // existed, the preceding Preformat/Reformat image restores it
                // as the chain walk continues.
                page.format(page_id, ObjectId::NONE, PageType::Free);
            }
            LogPayloadView::Reformat { prev_image, .. } => {
                page.restore_image(prev_image);
            }
            LogPayloadView::Preformat { prev_image } => {
                page.restore_image(prev_image);
            }
            LogPayloadView::InsertRecord { slot, .. } => {
                page.remove_record(slot as usize)?;
            }
            LogPayloadView::DeleteRecord { slot, old } => {
                page.insert_record(slot as usize, old)?;
            }
            LogPayloadView::UpdateRecord { slot, old, .. } => {
                page.replace_record(slot as usize, old)?;
            }
            LogPayloadView::SetNextPage { old, .. } => page.set_next_page(old),
            LogPayloadView::SetPrevPage { old, .. } => page.set_prev_page(old),
            LogPayloadView::AllocSet { index, old, .. } => {
                rewind_pagestore::alloc::set_state(
                    page,
                    index as usize,
                    rewind_pagestore::alloc::PageState::from_bits(old),
                )?;
            }
            LogPayloadView::BootWrite { offset, old, .. } => {
                let off = offset as usize;
                page.body_mut()[off..off + old.len()].copy_from_slice(old);
            }
            LogPayloadView::FullPageImage { prev_fpi_lsn, .. } => {
                // Content was identical before and after; only the FPI-chain
                // anchor moves back.
                page.set_last_fpi_lsn(prev_fpi_lsn);
            }
            LogPayloadView::RestoreImage { old, .. } => {
                page.restore_image(old);
            }
            _ => {
                return Err(Error::Internal(format!(
                    "undo of non-page payload {self:?}"
                )));
            }
        }
        Ok(())
    }

    /// The owned payload a compensation log record carries to logically undo
    /// this record, or `None` if it is not logically undoable.
    pub fn compensation(&self) -> Option<LogPayload> {
        match *self {
            LogPayloadView::InsertRecord { slot, bytes } => Some(LogPayload::DeleteRecord {
                slot,
                old: bytes.to_vec(),
            }),
            LogPayloadView::DeleteRecord { slot, old } => Some(LogPayload::InsertRecord {
                slot,
                bytes: old.to_vec(),
            }),
            LogPayloadView::UpdateRecord { slot, old, new } => Some(LogPayload::UpdateRecord {
                slot,
                old: new.to_vec(),
                new: old.to_vec(),
            }),
            LogPayloadView::SetNextPage { old, new } => {
                Some(LogPayload::SetNextPage { old: new, new: old })
            }
            LogPayloadView::SetPrevPage { old, new } => {
                Some(LogPayload::SetPrevPage { old: new, new: old })
            }
            LogPayloadView::AllocSet { index, old, new } => Some(LogPayload::AllocSet {
                index,
                old: new,
                new: old,
            }),
            LogPayloadView::BootWrite { offset, old, new } => Some(LogPayload::BootWrite {
                offset,
                old: new.to_vec(),
                new: old.to_vec(),
            }),
            LogPayloadView::RestoreImage { old, new } => Some(LogPayload::RestoreImage {
                old: Box::new(*new),
                new: Box::new(*old),
            }),
            _ => None,
        }
    }
}

/// A complete log record: header plus payload.
#[derive(Clone, Debug, PartialEq)]
pub struct LogRecord {
    /// The record's LSN (its byte offset in the log stream). Assigned at
    /// append time; not serialized.
    pub lsn: Lsn,
    /// Owning transaction, or [`TxnId::NONE`] for system records.
    pub txn: TxnId,
    /// Previous record of the same transaction (rollback chain).
    pub prev_lsn: Lsn,
    /// Page modified by this record, or invalid for pure-transaction records.
    pub page: PageId,
    /// Previous record that modified the same page — the paper's per-page
    /// chain (§4.1-B).
    pub prev_page_lsn: Lsn,
    /// Object owning the modified page (lets snapshot recovery reacquire row
    /// locks without reading pages, §5.2).
    pub object: ObjectId,
    /// For CLRs: the next record of the transaction to undo.
    pub undo_next: Lsn,
    /// Record flags ([`REC_FLAG_CLR`], [`REC_FLAG_SYSTEM`]).
    pub flags: RecordFlags,
    /// The operation.
    pub payload: LogPayload,
}

/// Size of the fixed record header in a serialized body: six `u64` link and
/// id fields plus the flags byte. The payload (tag byte first) follows.
pub const RECORD_HEADER_BYTES: usize = 49;

/// The fixed-offset fields of a log record, decodable without touching the
/// payload body. This is everything a backward chain walk (per-page
/// `prev_page_lsn`, per-transaction `prev_lsn`, CLR `undo_next`) needs to
/// navigate, so header-only walks skip payload decoding entirely.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct LogRecordHeader {
    /// The record's LSN (byte offset in the log stream).
    pub lsn: Lsn,
    /// Owning transaction, or [`TxnId::NONE`] for system records.
    pub txn: TxnId,
    /// Previous record of the same transaction (rollback chain).
    pub prev_lsn: Lsn,
    /// Page modified by this record, or invalid.
    pub page: PageId,
    /// Previous record that modified the same page (per-page chain).
    pub prev_page_lsn: Lsn,
    /// Object owning the modified page.
    pub object: ObjectId,
    /// For CLRs: the next record of the transaction to undo.
    pub undo_next: Lsn,
    /// Record flags.
    pub flags: RecordFlags,
    /// Kind of the payload that follows the header.
    pub kind: PayloadKind,
}

impl LogRecordHeader {
    /// Whether this record is a compensation log record.
    pub fn is_clr(&self) -> bool {
        self.flags & REC_FLAG_CLR != 0
    }

    /// Whether this record belongs to a system transaction.
    pub fn is_system(&self) -> bool {
        self.flags & REC_FLAG_SYSTEM != 0
    }

    /// Whether the payload modifies a page.
    pub fn is_page_op(&self) -> bool {
        self.kind.is_page_op()
    }
}

impl LogRecord {
    /// Whether this record is a compensation log record.
    pub fn is_clr(&self) -> bool {
        self.flags & REC_FLAG_CLR != 0
    }

    /// Whether this record belongs to a system (structure-modification)
    /// transaction.
    pub fn is_system(&self) -> bool {
        self.flags & REC_FLAG_SYSTEM != 0
    }

    /// This record's fixed-offset header fields.
    pub fn header(&self) -> LogRecordHeader {
        LogRecordHeader {
            lsn: self.lsn,
            txn: self.txn,
            prev_lsn: self.prev_lsn,
            page: self.page,
            prev_page_lsn: self.prev_page_lsn,
            object: self.object,
            undo_next: self.undo_next,
            flags: self.flags,
            kind: self.payload.kind(),
        }
    }

    /// Serialize the record body (everything but the LSN, which is implicit
    /// in the record's position).
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(64);
        self.encode_into(&mut out);
        out
    }

    /// Serialize the record body by appending to `out`, allocating nothing
    /// when `out` has capacity. The log manager's append path reuses one
    /// scratch buffer across appends through this.
    pub fn encode_into(&self, out: &mut Vec<u8>) {
        let mut w = ByteWriter::from_vec(std::mem::take(out));
        w.put_u64(self.txn.0);
        w.put_u64(self.prev_lsn.0);
        w.put_u64(self.page.0);
        w.put_u64(self.prev_page_lsn.0);
        w.put_u64(self.object.0);
        w.put_u64(self.undo_next.0);
        w.put_u8(self.flags);
        self.payload.encode_into(&mut w);
        *out = w.into_bytes();
    }

    /// Decode only the fixed header fields of a record body — no payload
    /// walk, no allocation. `lsn` is the offset the body was read from.
    pub fn decode_header(lsn: Lsn, bytes: &[u8]) -> Result<LogRecordHeader> {
        if bytes.len() < RECORD_HEADER_BYTES + 1 {
            return Err(Error::corruption(format!(
                "log record at {lsn} too short for header ({} bytes)",
                bytes.len()
            )));
        }
        use rewind_common::codec::read_u64_at;
        Ok(LogRecordHeader {
            lsn,
            txn: TxnId(read_u64_at(bytes, 0)),
            prev_lsn: Lsn(read_u64_at(bytes, 8)),
            page: PageId(read_u64_at(bytes, 16)),
            prev_page_lsn: Lsn(read_u64_at(bytes, 24)),
            object: ObjectId(read_u64_at(bytes, 32)),
            undo_next: Lsn(read_u64_at(bytes, 40)),
            flags: bytes[48],
            kind: PayloadKind::from_tag(bytes[RECORD_HEADER_BYTES])?,
        })
    }

    /// Decode the header plus a borrowed payload view — the allocation-free
    /// counterpart of [`LogRecord::decode`].
    pub fn decode_view(lsn: Lsn, bytes: &[u8]) -> Result<(LogRecordHeader, LogPayloadView<'_>)> {
        let header = Self::decode_header(lsn, bytes)?;
        let view = LogPayloadView::decode(&bytes[RECORD_HEADER_BYTES..]).map_err(|e| match e {
            Error::Corruption {
                kind,
                lsn: at,
                pid,
                detail,
            } => Error::Corruption {
                kind,
                lsn: Some(at.unwrap_or(lsn)),
                pid,
                detail: format!("{detail} at {lsn}"),
            },
            other => other,
        })?;
        Ok((header, view))
    }

    /// Deserialize a record body; `lsn` is the offset it was read from.
    pub fn decode(lsn: Lsn, bytes: &[u8]) -> Result<LogRecord> {
        let mut r = ByteReader::new(bytes);
        let rec = LogRecord {
            lsn,
            txn: TxnId(r.get_u64()?),
            prev_lsn: Lsn(r.get_u64()?),
            page: PageId(r.get_u64()?),
            prev_page_lsn: Lsn(r.get_u64()?),
            object: ObjectId(r.get_u64()?),
            undo_next: Lsn(r.get_u64()?),
            flags: r.get_u8()?,
            payload: LogPayload::decode_from(&mut r)?,
        };
        if !r.is_exhausted() {
            return Err(Error::corruption(format!(
                "{} trailing bytes after log record at {lsn}",
                r.remaining()
            )));
        }
        Ok(rec)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn img(fill: u8) -> Box<[u8; PAGE_SIZE]> {
        Box::new([fill; PAGE_SIZE])
    }

    fn all_payloads() -> Vec<LogPayload> {
        vec![
            LogPayload::Commit {
                at: Timestamp::from_secs(9),
            },
            LogPayload::Abort,
            LogPayload::End,
            LogPayload::Format {
                object: ObjectId(4),
                ty: PageType::BTreeLeaf,
                level: 0,
                next: PageId(9),
                prev: PageId::INVALID,
            },
            LogPayload::Preformat { prev_image: img(3) },
            LogPayload::Reformat {
                object: ObjectId(4),
                ty: PageType::BTreeInternal,
                level: 1,
                prev_image: img(7),
            },
            LogPayload::InsertRecord {
                slot: 2,
                bytes: b"rec".to_vec(),
            },
            LogPayload::DeleteRecord {
                slot: 0,
                old: b"gone".to_vec(),
            },
            LogPayload::UpdateRecord {
                slot: 1,
                old: b"a".to_vec(),
                new: b"bb".to_vec(),
            },
            LogPayload::SetNextPage {
                old: PageId(1),
                new: PageId(2),
            },
            LogPayload::SetPrevPage {
                old: PageId::INVALID,
                new: PageId(3),
            },
            LogPayload::AllocSet {
                index: 77,
                old: 0b10,
                new: 0b11,
            },
            LogPayload::BootWrite {
                offset: 16,
                old: vec![0; 8],
                new: vec![1; 8],
            },
            LogPayload::FullPageImage {
                prev_fpi_lsn: Lsn(5),
                image: img(9),
            },
            LogPayload::RestoreImage {
                old: img(1),
                new: img(2),
            },
            LogPayload::CheckpointBegin {
                at: Timestamp::from_secs(1),
            },
            LogPayload::CheckpointEnd(CheckpointBody {
                at: Timestamp::from_secs(2),
                begin_lsn: Lsn(8),
                att: vec![TxnTableEntry {
                    txn: TxnId(5),
                    first_lsn: Lsn(10),
                    last_lsn: Lsn(99),
                }],
                dpt: vec![DptEntry {
                    page: PageId(3),
                    rec_lsn: Lsn(40),
                }],
            }),
        ]
    }

    #[test]
    fn serialization_roundtrip_every_payload() {
        for payload in all_payloads() {
            let rec = LogRecord {
                lsn: Lsn(64),
                txn: TxnId(7),
                prev_lsn: Lsn(32),
                page: PageId(5),
                prev_page_lsn: Lsn(16),
                object: ObjectId(12),
                undo_next: Lsn(8),
                flags: REC_FLAG_CLR,
                payload: payload.clone(),
            };
            let bytes = rec.encode();
            let back = LogRecord::decode(Lsn(64), &bytes).unwrap();
            assert_eq!(back, rec, "payload {payload:?}");
        }
    }

    #[test]
    fn header_and_view_decode_agree_with_owned_for_every_payload() {
        for payload in all_payloads() {
            let rec = LogRecord {
                lsn: Lsn(64),
                txn: TxnId(7),
                prev_lsn: Lsn(32),
                page: PageId(5),
                prev_page_lsn: Lsn(16),
                object: ObjectId(12),
                undo_next: Lsn(8),
                flags: REC_FLAG_CLR,
                payload: payload.clone(),
            };
            let bytes = rec.encode();
            // header-only decode sees exactly the owned record's header
            let header = LogRecord::decode_header(Lsn(64), &bytes).unwrap();
            assert_eq!(header, rec.header(), "payload {payload:?}");
            assert_eq!(header.kind, payload.kind());
            assert!(header.is_clr());
            // borrowed view materializes back to the identical owned payload
            let (header2, view) = LogRecord::decode_view(Lsn(64), &bytes).unwrap();
            assert_eq!(header2, header);
            assert_eq!(view.kind(), payload.kind());
            assert_eq!(
                view.to_owned_payload().unwrap(),
                payload,
                "payload {payload:?}"
            );
            // the owned payload's as_view matches the decoded view
            if let Some(owned_view) = payload.as_view() {
                assert_eq!(owned_view, view, "payload {payload:?}");
            } else {
                assert_eq!(payload.kind(), PayloadKind::CheckpointEnd);
            }
        }
    }

    #[test]
    fn view_redo_undo_match_owned_for_row_ops() {
        let pid = PageId(5);
        let mut base = Page::formatted(pid, ObjectId(4), PageType::BTreeLeaf);
        base.insert_record(0, b"alpha").unwrap();
        base.insert_record(1, b"omega").unwrap();
        base.set_page_lsn(Lsn(100));
        let cases = vec![
            LogPayload::InsertRecord {
                slot: 1,
                bytes: b"middle".to_vec(),
            },
            LogPayload::DeleteRecord {
                slot: 0,
                old: b"alpha".to_vec(),
            },
            LogPayload::UpdateRecord {
                slot: 1,
                old: b"omega".to_vec(),
                new: b"OMEGA!".to_vec(),
            },
        ];
        for payload in cases {
            let bytes = LogRecord {
                lsn: Lsn::NULL,
                txn: TxnId(1),
                prev_lsn: Lsn::NULL,
                page: pid,
                prev_page_lsn: Lsn(100),
                object: ObjectId(4),
                undo_next: Lsn::NULL,
                flags: 0,
                payload: payload.clone(),
            }
            .encode();
            let (_, view) = LogRecord::decode_view(Lsn(200), &bytes).unwrap();
            // redo via the borrowed view == redo via the owned payload
            let mut via_view = base.clone();
            let mut via_owned = base.clone();
            view.redo(&mut via_view, pid, Lsn(200)).unwrap();
            payload.redo(&mut via_owned, pid, Lsn(200)).unwrap();
            assert_eq!(
                via_view.image()[..],
                via_owned.image()[..],
                "redo {payload:?}"
            );
            // and the view's undo restores the logical base state
            view.undo(&mut via_view, pid).unwrap();
            let a: Vec<_> = base.records().collect();
            let b: Vec<_> = via_view.records().collect();
            assert_eq!(a, b, "undo {payload:?}");
        }
    }

    #[test]
    fn decode_rejects_truncation_and_junk() {
        let rec = LogRecord {
            lsn: Lsn(8),
            txn: TxnId(1),
            prev_lsn: Lsn::NULL,
            page: PageId(2),
            prev_page_lsn: Lsn::NULL,
            object: ObjectId(1),
            undo_next: Lsn::NULL,
            flags: 0,
            payload: LogPayload::InsertRecord {
                slot: 0,
                bytes: b"xy".to_vec(),
            },
        };
        let bytes = rec.encode();
        assert!(LogRecord::decode(Lsn(8), &bytes[..bytes.len() - 1]).is_err());
        let mut extended = bytes.clone();
        extended.push(0);
        assert!(LogRecord::decode(Lsn(8), &extended).is_err());
        let mut junk = bytes;
        junk[49] = 200; // payload tag byte
        assert!(LogRecord::decode(Lsn(8), &junk).is_err());
    }

    #[test]
    fn redo_then_undo_is_identity_for_row_ops() {
        use rewind_pagestore::page::Page;
        let pid = PageId(5);
        let mut base = Page::formatted(pid, ObjectId(4), PageType::BTreeLeaf);
        base.insert_record(0, b"alpha").unwrap();
        base.insert_record(1, b"omega").unwrap();
        base.set_page_lsn(Lsn(100));

        let cases = vec![
            LogPayload::InsertRecord {
                slot: 1,
                bytes: b"middle".to_vec(),
            },
            LogPayload::DeleteRecord {
                slot: 0,
                old: b"alpha".to_vec(),
            },
            LogPayload::UpdateRecord {
                slot: 1,
                old: b"omega".to_vec(),
                new: b"OMEGA!".to_vec(),
            },
            LogPayload::SetNextPage {
                old: PageId::INVALID,
                new: PageId(9),
            },
            LogPayload::SetPrevPage {
                old: PageId::INVALID,
                new: PageId(4),
            },
        ];
        for payload in cases {
            let mut p = base.clone();
            payload.redo(&mut p, pid, Lsn(200)).unwrap();
            assert_eq!(p.page_lsn(), Lsn(200));
            payload.undo(&mut p, pid).unwrap();
            p.set_page_lsn(Lsn(100));
            // logical equality: same records in same order + same links
            let a: Vec<_> = base.records().collect();
            let b: Vec<_> = p.records().collect();
            assert_eq!(a, b, "payload {payload:?}");
            assert_eq!(p.next_page(), base.next_page());
            assert_eq!(p.prev_page(), base.prev_page());
        }
    }

    #[test]
    fn fpi_redo_restores_image_and_anchors_chain() {
        let pid = PageId(3);
        let mut p = Page::formatted(pid, ObjectId(2), PageType::Heap);
        p.insert_record(0, b"row").unwrap();
        p.set_page_lsn(Lsn(50));
        let payload = LogPayload::FullPageImage {
            prev_fpi_lsn: Lsn(20),
            image: Box::new(*p.image()),
        };

        let mut q = Page::zeroed();
        payload.redo(&mut q, pid, Lsn(70)).unwrap();
        assert_eq!(q.record(0).unwrap(), b"row");
        assert_eq!(q.page_lsn(), Lsn(70));
        assert_eq!(q.last_fpi_lsn(), Lsn(70));

        payload.undo(&mut q, pid).unwrap();
        assert_eq!(q.last_fpi_lsn(), Lsn(20), "undo moves FPI anchor back");
        assert_eq!(
            q.record(0).unwrap(),
            b"row",
            "content untouched by FPI undo"
        );
    }

    #[test]
    fn preformat_undo_restores_previous_incarnation() {
        let pid = PageId(11);
        let mut old_page = Page::formatted(pid, ObjectId(3), PageType::BTreeLeaf);
        old_page.insert_record(0, b"precious-old-data").unwrap();
        old_page.set_page_lsn(Lsn(40));

        let pre = LogPayload::Preformat {
            prev_image: Box::new(*old_page.image()),
        };
        let fmt = LogPayload::Format {
            object: ObjectId(9),
            ty: PageType::Heap,
            level: 0,
            next: PageId::INVALID,
            prev: PageId::INVALID,
        };

        // forward: preformat (nil) then format
        let mut p = old_page.clone();
        pre.redo(&mut p, pid, Lsn(100)).unwrap();
        fmt.redo(&mut p, pid, Lsn(110)).unwrap();
        assert_eq!(p.page_type(), PageType::Heap);
        assert_eq!(p.slot_count(), 0);

        // backward: undo format (erase), then undo preformat (restore image)
        fmt.undo(&mut p, pid).unwrap();
        assert_eq!(p.page_type(), PageType::Free);
        pre.undo(&mut p, pid).unwrap();
        assert_eq!(p.record(0).unwrap(), b"precious-old-data");
        assert_eq!(
            p.page_lsn(),
            Lsn(40),
            "previous incarnation's pageLSN restored"
        );
    }

    #[test]
    fn compensation_payloads_invert() {
        let pid = PageId(5);
        let mut base = Page::formatted(pid, ObjectId(4), PageType::BTreeLeaf);
        base.insert_record(0, b"row0").unwrap();
        let cases = vec![
            LogPayload::InsertRecord {
                slot: 1,
                bytes: b"x".to_vec(),
            },
            LogPayload::DeleteRecord {
                slot: 0,
                old: b"row0".to_vec(),
            },
            LogPayload::UpdateRecord {
                slot: 0,
                old: b"row0".to_vec(),
                new: b"ROW0".to_vec(),
            },
            LogPayload::AllocSet {
                index: 3,
                old: 0,
                new: 3,
            },
        ];
        for payload in cases {
            let comp = payload.compensation().expect("undoable");
            if matches!(payload, LogPayload::AllocSet { .. }) {
                continue; // needs a map page; inversion checked structurally below
            }
            let mut p = base.clone();
            payload.redo(&mut p, pid, Lsn(10)).unwrap();
            comp.redo(&mut p, pid, Lsn(20)).unwrap();
            let a: Vec<_> = base.records().collect();
            let b: Vec<_> = p.records().collect();
            assert_eq!(a, b, "compensation of {payload:?}");
        }
        // structural inversion for AllocSet
        match (LogPayload::AllocSet {
            index: 3,
            old: 0,
            new: 3,
        })
        .compensation()
        .unwrap()
        {
            LogPayload::AllocSet { index, old, new } => {
                assert_eq!((index, old, new), (3, 3, 0));
            }
            other => panic!("unexpected {other:?}"),
        }
        assert!(LogPayload::Commit {
            at: Timestamp::ZERO
        }
        .compensation()
        .is_none());
        assert!(LogPayload::Preformat { prev_image: img(0) }
            .compensation()
            .is_none());
    }

    #[test]
    fn page_op_classification() {
        assert!(!LogPayload::Commit {
            at: Timestamp::ZERO
        }
        .is_page_op());
        assert!(!LogPayload::CheckpointEnd(CheckpointBody::default()).is_page_op());
        assert!(LogPayload::InsertRecord {
            slot: 0,
            bytes: vec![]
        }
        .is_page_op());
        assert!(LogPayload::Preformat { prev_image: img(0) }.is_page_op());
    }
}
