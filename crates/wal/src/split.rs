//! SplitLSN search: translate a wall-clock time into an LSN (paper §5.1).
//!
//! "The initial step of as-of snapshot creation translates the specified
//! wall-clock time into the SplitLSN by scanning the transaction log of the
//! primary database. The SplitLSN search is optimized to first narrow down
//! the transaction log region using checkpoint log records which store
//! wall-clock time and then by using transaction commit log records to find
//! the actual SplitLSN."

use crate::logmgr::LogManager;
use rewind_common::{Error, Lsn, Result, Timestamp};

/// Find the SplitLSN for wall-clock time `t`.
///
/// The snapshot will contain exactly the records with `lsn <= split`:
/// every transaction that committed at or before `t` is included, and
/// transactions still in flight at `t` are undone by snapshot recovery.
///
/// Returns [`Error::RetentionExceeded`] when `t` precedes the retained log.
pub fn find_split_lsn(log: &LogManager, t: Timestamp) -> Result<Lsn> {
    // Narrow the scan region using the checkpoint directory / time index.
    let start = log
        .checkpoint_before_time(t)
        .map(|c| c.begin_lsn)
        .or_else(|| log.time_index_floor(t).map(|(l, _)| l))
        .unwrap_or(log.truncation_point());

    if start < log.truncation_point() {
        return Err(retention_err(log, t));
    }

    // Scan forward for the last commit at or before `t`. Transactions with
    // no commit stamp by `t` are losers; records after the chosen split are
    // simply "the future" from the snapshot's point of view. Header-only
    // views: only the commit/checkpoint time stamps are decoded.
    let mut split: Option<Lsn> = None;
    log.scan_views(start, Lsn::MAX, |header, view| match view.time_stamp() {
        Some(at) => {
            if at <= t {
                split = Some(header.lsn);
                Ok(true)
            } else {
                Ok(false) // commits are time-ordered; we can stop
            }
        }
        None => Ok(true),
    })?;

    match split {
        Some(lsn) => Ok(lsn),
        None => {
            // No commit at or before `t` in the retained region: if the log
            // was truncated, the time is out of retention; otherwise the time
            // predates all activity and the empty-database state applies.
            if log.truncation_point() > Lsn::FIRST {
                Err(retention_err(log, t))
            } else {
                Ok(Lsn::FIRST)
            }
        }
    }
}

fn retention_err(log: &LogManager, t: Timestamp) -> Error {
    Error::RetentionExceeded {
        requested: t,
        earliest: log.earliest_retained_time().unwrap_or(Timestamp::ZERO),
    }
}

/// Archive-aware SplitLSN search, for point-in-time restore: may reach back
/// into log that is out of retention but still archived (log backups).
pub fn find_split_lsn_deep(log: &LogManager, t: Timestamp) -> Result<Lsn> {
    let start = log
        .checkpoint_before_time(t)
        .map(|c| c.begin_lsn)
        .unwrap_or_else(|| log.earliest_available_lsn());
    let mut split: Option<Lsn> = None;
    log.scan_views_deep(start, Lsn::MAX, |header, view| match view.time_stamp() {
        Some(at) => {
            if at <= t {
                split = Some(header.lsn);
                Ok(true)
            } else {
                Ok(false)
            }
        }
        None => Ok(true),
    })?;
    Ok(split.unwrap_or(Lsn::FIRST))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::logmgr::LogConfig;
    use crate::record::{CheckpointBody, LogPayload, LogRecord};
    use rewind_common::{ObjectId, PageId, TxnId};

    fn commit_rec(txn: u64, at: Timestamp) -> LogRecord {
        LogRecord {
            lsn: Lsn::NULL,
            txn: TxnId(txn),
            prev_lsn: Lsn::NULL,
            page: PageId::INVALID,
            prev_page_lsn: Lsn::NULL,
            object: ObjectId::NONE,
            undo_next: Lsn::NULL,
            flags: 0,
            payload: LogPayload::Commit { at },
        }
    }

    fn data_rec(txn: u64) -> LogRecord {
        LogRecord {
            lsn: Lsn::NULL,
            txn: TxnId(txn),
            prev_lsn: Lsn::NULL,
            page: PageId(1),
            prev_page_lsn: Lsn::NULL,
            object: ObjectId(1),
            undo_next: Lsn::NULL,
            flags: 0,
            payload: LogPayload::InsertRecord {
                slot: 0,
                bytes: vec![0; 32],
            },
        }
    }

    /// Build a log with commits at seconds 1..=n, returning commit LSNs.
    fn build(n: u64) -> (LogManager, Vec<(Lsn, Timestamp)>) {
        let log = LogManager::new(LogConfig::default());
        let mut commits = Vec::new();
        for i in 1..=n {
            log.append(&data_rec(i));
            log.append(&data_rec(i));
            let at = Timestamp::from_secs(i);
            let l = log.append(&commit_rec(i, at));
            commits.push((l, at));
            if i % 10 == 0 {
                // checkpoints land between commits (at +0.5 s)
                let cat = Timestamp::from_millis(i * 1000 + 500);
                let begin = log.append(&checkpoint_begin(cat));
                log.append(&checkpoint_end(begin, cat));
            }
        }
        (log, commits)
    }

    fn checkpoint_begin(at: Timestamp) -> LogRecord {
        LogRecord {
            payload: LogPayload::CheckpointBegin { at },
            ..commit_rec(0, at)
        }
    }

    fn checkpoint_end(begin_lsn: Lsn, at: Timestamp) -> LogRecord {
        LogRecord {
            payload: LogPayload::CheckpointEnd(CheckpointBody {
                at,
                begin_lsn,
                att: vec![],
                dpt: vec![],
            }),
            ..commit_rec(0, at)
        }
    }

    /// Oracle: linear scan of the whole log.
    fn oracle_split(log: &LogManager, t: Timestamp) -> Lsn {
        let mut split = Lsn::FIRST;
        log.scan(log.truncation_point(), Lsn::MAX, |rec| {
            if let LogPayload::Commit { at } | LogPayload::CheckpointBegin { at } = rec.payload {
                if at <= t {
                    split = rec.lsn;
                }
            }
            Ok(true)
        })
        .unwrap();
        split
    }

    #[test]
    fn finds_exact_commit_boundaries() {
        let (log, commits) = build(50);
        for &(lsn, at) in &commits {
            // exactly at the commit time: that commit is included
            assert_eq!(find_split_lsn(&log, at).unwrap(), lsn, "at {at}");
            // shortly after (before any checkpoint stamp): still that commit
            assert_eq!(find_split_lsn(&log, at.plus_micros(400_000)).unwrap(), lsn);
        }
    }

    #[test]
    fn matches_linear_oracle_at_random_times() {
        let (log, _) = build(80);
        for us in [
            0u64, 1, 999_999, 1_000_000, 7_300_000, 33_500_000, 80_000_000, 99_000_000,
        ] {
            let t = Timestamp::from_micros(us);
            assert_eq!(
                find_split_lsn(&log, t).unwrap(),
                oracle_split(&log, t),
                "t={t}"
            );
        }
    }

    #[test]
    fn before_first_commit_yields_log_start() {
        let (log, _) = build(5);
        assert_eq!(
            find_split_lsn(&log, Timestamp::from_micros(1)).unwrap(),
            Lsn::FIRST
        );
    }

    #[test]
    fn future_time_yields_last_commit() {
        let (log, commits) = build(5);
        let last = commits.last().unwrap().0;
        let split = find_split_lsn(&log, Timestamp::from_secs(1000)).unwrap();
        // Could be the last commit or a later checkpoint-begin stamp; either
        // way it must be >= the last commit.
        assert!(split >= last);
    }

    #[test]
    fn truncated_history_is_retention_error() {
        let (log, commits) = build(200);
        log.flush_to(log.tail_lsn());
        // need enough log volume for segment-granular truncation; pad it
        for _ in 0..4000 {
            log.append(&data_rec(999));
        }
        log.flush_to(log.tail_lsn());
        let mid = commits[100].0;
        log.truncate_before(mid);
        if log.truncation_point() > Lsn::FIRST {
            match find_split_lsn(&log, Timestamp::from_secs(1)) {
                Err(Error::RetentionExceeded { .. }) => {}
                other => panic!("expected RetentionExceeded, got {other:?}"),
            }
            // recent times still work
            assert!(find_split_lsn(&log, Timestamp::from_secs(199)).is_ok());
        }
    }
}
