//! The log manager: the append-only virtual log stream.
//!
//! The stream is a sequence of `[u32 length][record body]` entries; a
//! record's LSN is the byte offset of its length prefix. The stream is held
//! in fixed-size in-memory segments; truncation (retention enforcement,
//! §4.3) drops whole segments from the front.
//!
//! Random record reads (`get_record`) are how `PreparePageAsOf` walks
//! per-page chains. Each read is classified as a *log cache hit* or a *log
//! I/O* through a simple cache model (hot tail + LRU of recently touched
//! blocks), because the number of undo log I/Os is exactly what the paper
//! measures in Fig. 11 and what makes log media latency matter (§6.2).

use crate::record::{LogPayload, LogRecord};
use parking_lot::Mutex;
use rewind_common::{Error, IoStats, Lsn, Result, Timestamp};
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Size of one in-memory log segment.
const SEGMENT_BYTES: u64 = 1 << 20;
/// Cache-model block size: one "log page" worth of records.
const CACHE_BLOCK_BYTES: u64 = 64 * 1024;

/// Tuning knobs for the log manager.
#[derive(Clone, Debug)]
pub struct LogConfig {
    /// Reads within this many bytes of the log tail are always cache hits
    /// (the tail is in memory in any real system).
    pub hot_tail_bytes: u64,
    /// Number of 64 KiB blocks the read cache holds.
    pub cache_blocks: usize,
    /// Keep truncated segments as a *log archive* (the moral equivalent of
    /// incremental log backups, paper §1). Archived log is out of retention
    /// for the as-of machinery but remains readable to point-in-time
    /// restore via the `*_deep` methods.
    pub archive_on_truncate: bool,
}

impl Default for LogConfig {
    fn default() -> Self {
        LogConfig { hot_tail_bytes: 4 * 1024 * 1024, cache_blocks: 64, archive_on_truncate: false }
    }
}

/// A checkpoint known to the log manager (directory entry).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct CheckpointInfo {
    /// LSN of the checkpoint-end record.
    pub end_lsn: Lsn,
    /// LSN of the matching checkpoint-begin record.
    pub begin_lsn: Lsn,
    /// Wall-clock time of the checkpoint.
    pub at: Timestamp,
}

struct Segment {
    start: u64,
    data: Vec<u8>,
}

struct LogInner {
    segments: Vec<Segment>,
    /// Truncated segments retained as the log archive (oldest first).
    archive: Vec<Segment>,
    /// Next byte offset to be written.
    tail: u64,
    /// Offsets below this have been truncated away.
    trunc: u64,
    /// Cache model: block id -> last-use tick.
    cache: HashMap<u64, u64>,
    cache_tick: u64,
    /// Checkpoint directory, ascending by LSN.
    checkpoints: Vec<CheckpointInfo>,
    /// Sparse time index: (lsn, wall clock) sampled at commits/checkpoints,
    /// ascending. Supports retention decisions and split search narrowing.
    time_index: Vec<(Lsn, Timestamp)>,
}

/// The write-ahead log manager. Thread-safe; shared via `Arc`.
pub struct LogManager {
    inner: Mutex<LogInner>,
    flushed: AtomicU64,
    stats: Arc<IoStats>,
    config: LogConfig,
}

impl LogManager {
    /// A fresh, empty log.
    pub fn new(config: LogConfig) -> Self {
        LogManager {
            inner: Mutex::new(LogInner {
                segments: Vec::new(),
                archive: Vec::new(),
                tail: Lsn::FIRST.0,
                trunc: Lsn::FIRST.0,
                cache: HashMap::new(),
                cache_tick: 0,
                checkpoints: Vec::new(),
                time_index: Vec::new(),
            }),
            flushed: AtomicU64::new(Lsn::FIRST.0),
            stats: Arc::new(IoStats::new()),
            config,
        }
    }

    /// The shared I/O counters for this log.
    pub fn io_stats(&self) -> &Arc<IoStats> {
        &self.stats
    }

    /// Append a record; assigns and returns its LSN. The record is in memory
    /// (not durable) until [`LogManager::flush_to`] covers it.
    pub fn append(&self, rec: &LogRecord) -> Lsn {
        let body = rec.encode();
        let mut inner = self.inner.lock();
        let lsn = Lsn(inner.tail);
        let mut framed = Vec::with_capacity(4 + body.len());
        framed.extend_from_slice(&(body.len() as u32).to_le_bytes());
        framed.extend_from_slice(&body);
        inner.write_bytes(&framed);
        // Index commit/checkpoint times for retention & split search.
        match &rec.payload {
            LogPayload::Commit { at } | LogPayload::CheckpointBegin { at } => {
                let at = *at;
                inner.push_time(lsn, at);
            }
            LogPayload::CheckpointEnd(body) => {
                let info = CheckpointInfo { end_lsn: lsn, begin_lsn: body.begin_lsn, at: body.at };
                inner.checkpoints.push(info);
                let at = body.at;
                inner.push_time(lsn, at);
            }
            _ => {}
        }
        lsn
    }

    /// Next LSN that will be assigned (the current end of the log).
    pub fn tail_lsn(&self) -> Lsn {
        Lsn(self.inner.lock().tail)
    }

    /// Oldest LSN still present (truncation point).
    pub fn truncation_point(&self) -> Lsn {
        Lsn(self.inner.lock().trunc)
    }

    /// Highest LSN known durable.
    pub fn flushed_lsn(&self) -> Lsn {
        Lsn(self.flushed.load(Ordering::Acquire))
    }

    /// Force the log up to (and including the record at) `lsn`. Sequential
    /// write bytes are accounted; commit latency in benchmarks derives from
    /// them.
    pub fn flush_to(&self, lsn: Lsn) {
        let target = {
            let inner = self.inner.lock();
            // Flushing "through lsn" means everything appended before the
            // record *after* lsn — conservatively flush the whole tail.
            let _ = lsn;
            inner.tail
        };
        let prev = self.flushed.fetch_max(target, Ordering::AcqRel);
        if target > prev {
            self.stats.add_log_bytes_written(target - prev);
        }
    }

    /// Read the record at `lsn`, accounting the read through the cache model.
    pub fn get_record(&self, lsn: Lsn) -> Result<LogRecord> {
        let mut inner = self.inner.lock();
        if lsn.0 < inner.trunc {
            return Err(Error::LogTruncated(lsn));
        }
        inner.touch_cache(lsn, &self.config, &self.stats);
        inner.read_record(lsn)
    }

    /// Read the record at `lsn` without touching the cache model (used by
    /// sequential scans that account via `log_bytes_scanned`).
    fn get_record_uncounted(inner: &LogInner, lsn: Lsn) -> Result<LogRecord> {
        inner.read_record(lsn)
    }

    /// Iterate records in `[from, to)` in order, invoking `f` for each.
    /// Returns the LSN one past the last record visited. Sequential bytes
    /// are accounted as `log_bytes_scanned`.
    pub fn scan(
        &self,
        from: Lsn,
        to: Lsn,
        mut f: impl FnMut(&LogRecord) -> Result<bool>,
    ) -> Result<Lsn> {
        let mut cur = from;
        loop {
            let rec = {
                let inner = self.inner.lock();
                if cur.0 < inner.trunc {
                    return Err(Error::LogTruncated(cur));
                }
                if cur.0 >= inner.tail || cur >= to {
                    return Ok(cur);
                }
                Self::get_record_uncounted(&inner, cur)?
            };
            let len = rec.encode().len() as u64 + 4;
            self.stats.add_log_bytes_scanned(len);
            if !f(&rec)? {
                return Ok(Lsn(cur.0 + len));
            }
            cur = Lsn(cur.0 + len);
        }
    }

    /// The checkpoint directory (ascending by LSN).
    pub fn checkpoints(&self) -> Vec<CheckpointInfo> {
        self.inner.lock().checkpoints.clone()
    }

    /// Latest checkpoint whose *end* record is at or before `lsn`.
    pub fn checkpoint_before(&self, lsn: Lsn) -> Option<CheckpointInfo> {
        let inner = self.inner.lock();
        inner.checkpoints.iter().rev().find(|c| c.end_lsn <= lsn).copied()
    }

    /// Latest checkpoint taken at or before wall-clock `t`.
    pub fn checkpoint_before_time(&self, t: Timestamp) -> Option<CheckpointInfo> {
        let inner = self.inner.lock();
        inner.checkpoints.iter().rev().find(|c| c.at <= t).copied()
    }

    /// Earliest wall-clock time still covered by the retained log, if known.
    pub fn earliest_retained_time(&self) -> Option<Timestamp> {
        let inner = self.inner.lock();
        inner.time_index.iter().find(|(l, _)| l.0 >= inner.trunc).map(|&(_, t)| t)
    }

    /// Best-known LSN at or before wall-clock time `t` from the sparse time
    /// index (starting point for the split search).
    pub fn time_index_floor(&self, t: Timestamp) -> Option<(Lsn, Timestamp)> {
        let inner = self.inner.lock();
        inner.time_index.iter().rev().find(|&&(_, ts)| ts <= t).copied()
    }

    /// Drop whole segments that lie entirely before `lsn` (moving them to
    /// the archive when archiving is enabled). Returns the new truncation
    /// point. Never truncates past the flushed LSN.
    pub fn truncate_before(&self, lsn: Lsn) -> Lsn {
        let archive = self.config.archive_on_truncate;
        let mut inner = self.inner.lock();
        let limit = lsn.0.min(self.flushed.load(Ordering::Acquire));
        while let Some(first) = inner.segments.first() {
            let seg_end = first.start + first.data.len() as u64;
            if seg_end <= limit {
                let seg = inner.segments.remove(0);
                if archive {
                    inner.archive.push(seg);
                }
                inner.trunc = seg_end;
            } else {
                break;
            }
        }
        let trunc = inner.trunc;
        inner.time_index.retain(|(l, _)| l.0 >= trunc);
        if !archive {
            inner.checkpoints.retain(|c| c.begin_lsn.0 >= trunc);
        }
        Lsn(trunc)
    }

    /// Bytes held in the log archive.
    pub fn archived_bytes(&self) -> u64 {
        self.inner.lock().archive.iter().map(|s| s.data.len() as u64).sum()
    }

    /// Earliest LSN readable through the deep (archive-aware) methods.
    pub fn earliest_available_lsn(&self) -> Lsn {
        let inner = self.inner.lock();
        Lsn(inner.archive.first().map(|s| s.start).unwrap_or(inner.trunc))
    }

    /// Read a record, falling back to the archive for truncated history.
    /// Only point-in-time restore uses this — the as-of machinery stays
    /// retention-bound on purpose.
    pub fn get_record_deep(&self, lsn: Lsn) -> Result<LogRecord> {
        let inner = self.inner.lock();
        inner.read_record_deep(lsn)
    }

    /// Like [`LogManager::scan`] but reading archived history too.
    pub fn scan_deep(
        &self,
        from: Lsn,
        to: Lsn,
        mut f: impl FnMut(&LogRecord) -> Result<bool>,
    ) -> Result<Lsn> {
        let mut cur = from;
        loop {
            let rec = {
                let inner = self.inner.lock();
                if cur.0 >= inner.tail || cur >= to {
                    return Ok(cur);
                }
                inner.read_record_deep(cur)?
            };
            let len = rec.encode().len() as u64 + 4;
            self.stats.add_log_bytes_scanned(len);
            if !f(&rec)? {
                return Ok(Lsn(cur.0 + len));
            }
            cur = Lsn(cur.0 + len);
        }
    }

    /// Discard everything after the flushed LSN — what a crash does to the
    /// volatile log tail. Used by crash simulation before restart recovery.
    pub fn discard_unflushed(&self) {
        let mut inner = self.inner.lock();
        let flushed = self.flushed.load(Ordering::Acquire);
        while let Some(last) = inner.segments.last() {
            if last.start >= flushed {
                inner.segments.pop();
            } else {
                break;
            }
        }
        if let Some(last) = inner.segments.last_mut() {
            let keep = (flushed - last.start) as usize;
            if keep < last.data.len() {
                last.data.truncate(keep);
            }
        }
        inner.tail = flushed.max(inner.trunc);
        let tail = inner.tail;
        inner.time_index.retain(|(l, _)| l.0 < tail);
        inner.checkpoints.retain(|c| c.end_lsn.0 < tail);
        inner.cache.clear();
    }

    /// Total bytes currently retained.
    pub fn retained_bytes(&self) -> u64 {
        let inner = self.inner.lock();
        inner.tail - inner.trunc
    }

    /// Total bytes ever appended.
    pub fn total_bytes(&self) -> u64 {
        self.inner.lock().tail - Lsn::FIRST.0
    }
}

impl LogInner {
    /// Append one framed record. Records never straddle segments (a segment
    /// is closed early rather than split a record), so truncation at segment
    /// granularity always lands on a record boundary.
    fn write_bytes(&mut self, bytes: &[u8]) {
        let need_new = match self.segments.last() {
            None => true,
            Some(s) => s.data.len() + bytes.len() > SEGMENT_BYTES as usize && !s.data.is_empty(),
        };
        if need_new {
            self.segments.push(Segment { start: self.tail, data: Vec::new() });
        }
        let seg = self.segments.last_mut().unwrap();
        seg.data.extend_from_slice(bytes);
        self.tail += bytes.len() as u64;
    }

    fn push_time(&mut self, lsn: Lsn, at: Timestamp) {
        // keep the index sparse: one entry per 64 KiB of log
        if self.time_index.last().is_none_or(|&(l, _)| lsn.0 - l.0 >= 64 * 1024) {
            self.time_index.push((lsn, at));
        }
    }

    fn segment_for(&self, off: u64, deep: bool) -> Result<&Segment> {
        // binary search by start offset
        let idx = self.segments.partition_point(|s| s.start <= off);
        if idx == 0 {
            if deep {
                let aidx = self.archive.partition_point(|s| s.start <= off);
                if aidx > 0 {
                    let seg = &self.archive[aidx - 1];
                    if off < seg.start + seg.data.len() as u64 {
                        return Ok(seg);
                    }
                }
            }
            return Err(Error::LogTruncated(Lsn(off)));
        }
        let seg = &self.segments[idx - 1];
        if off >= seg.start + seg.data.len() as u64 {
            return Err(Error::Corruption(format!("log offset {off} out of range")));
        }
        Ok(seg)
    }

    /// Copy `len` bytes starting at `off`, possibly spanning segments.
    fn copy_bytes(&self, off: u64, len: usize, deep: bool) -> Result<Vec<u8>> {
        let mut out = Vec::with_capacity(len);
        let mut cur = off;
        while out.len() < len {
            let seg = self.segment_for(cur, deep)?;
            let in_seg = (cur - seg.start) as usize;
            let take = (seg.data.len() - in_seg).min(len - out.len());
            out.extend_from_slice(&seg.data[in_seg..in_seg + take]);
            cur += take as u64;
        }
        Ok(out)
    }

    fn read_record_at(&self, lsn: Lsn, deep: bool) -> Result<LogRecord> {
        if lsn.0 + 4 > self.tail {
            return Err(Error::Corruption(format!("log read at {lsn} past tail {}", self.tail)));
        }
        let len_bytes = self.copy_bytes(lsn.0, 4, deep)?;
        let len = u32::from_le_bytes(len_bytes.try_into().unwrap()) as usize;
        if lsn.0 + 4 + len as u64 > self.tail {
            return Err(Error::Corruption(format!("log record at {lsn} overruns tail")));
        }
        let body = self.copy_bytes(lsn.0 + 4, len, deep)?;
        LogRecord::decode(lsn, &body)
    }

    fn read_record(&self, lsn: Lsn) -> Result<LogRecord> {
        self.read_record_at(lsn, false)
    }

    fn read_record_deep(&self, lsn: Lsn) -> Result<LogRecord> {
        self.read_record_at(lsn, true)
    }

    /// Classify a random read as hit or I/O and update the cache model.
    fn touch_cache(&mut self, lsn: Lsn, config: &LogConfig, stats: &IoStats) {
        if self.tail.saturating_sub(lsn.0) <= config.hot_tail_bytes {
            stats.add_log_cache_hit();
            return;
        }
        let block = lsn.0 / CACHE_BLOCK_BYTES;
        self.cache_tick += 1;
        let tick = self.cache_tick;
        if let std::collections::hash_map::Entry::Occupied(mut e) = self.cache.entry(block) {
            e.insert(tick);
            stats.add_log_cache_hit();
            return;
        }
        stats.add_log_read_io();
        self.cache.insert(block, tick);
        if self.cache.len() > config.cache_blocks {
            // Evict the least-recently-used block (linear scan; the cache is
            // small and this path is already "an I/O").
            if let Some((&victim, _)) = self.cache.iter().min_by_key(|(_, &t)| t) {
                self.cache.remove(&victim);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::record::{CheckpointBody, LogPayload};
    use rewind_common::{ObjectId, PageId, TxnId};

    fn rec(txn: u64, payload: LogPayload) -> LogRecord {
        LogRecord {
            lsn: Lsn::NULL,
            txn: TxnId(txn),
            prev_lsn: Lsn::NULL,
            page: PageId(1),
            prev_page_lsn: Lsn::NULL,
            object: ObjectId(1),
            undo_next: Lsn::NULL,
            flags: 0,
            payload,
        }
    }

    fn insert_rec(txn: u64, n: usize) -> LogRecord {
        rec(txn, LogPayload::InsertRecord { slot: 0, bytes: vec![7u8; n] })
    }

    #[test]
    fn append_assigns_increasing_lsns_and_reads_back() {
        let log = LogManager::new(LogConfig::default());
        let a = log.append(&insert_rec(1, 10));
        let b = log.append(&insert_rec(1, 20));
        let c = log.append(&rec(1, LogPayload::Commit { at: Timestamp::from_secs(1) }));
        assert!(a < b && b < c);
        assert_eq!(a, Lsn::FIRST);
        let back = log.get_record(b).unwrap();
        assert_eq!(back.lsn, b);
        match back.payload {
            LogPayload::InsertRecord { ref bytes, .. } => assert_eq!(bytes.len(), 20),
            ref other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn flush_accounts_sequential_bytes() {
        let log = LogManager::new(LogConfig::default());
        let a = log.append(&insert_rec(1, 100));
        assert!(log.flushed_lsn() <= a);
        log.flush_to(a);
        assert_eq!(log.flushed_lsn(), log.tail_lsn());
        let s = log.io_stats().snapshot();
        assert!(s.log_bytes_written > 100);
        // idempotent
        log.flush_to(a);
        assert_eq!(log.io_stats().snapshot().log_bytes_written, s.log_bytes_written);
    }

    #[test]
    fn scan_visits_records_in_order_and_respects_bounds() {
        let log = LogManager::new(LogConfig::default());
        let mut lsns = Vec::new();
        for i in 0..10 {
            lsns.push(log.append(&insert_rec(i, 8)));
        }
        let mut seen = Vec::new();
        log.scan(lsns[2], lsns[7], |r| {
            seen.push(r.lsn);
            Ok(true)
        })
        .unwrap();
        assert_eq!(seen, lsns[2..7].to_vec());
        // early stop
        let mut count = 0;
        log.scan(Lsn::FIRST, Lsn::MAX, |_| {
            count += 1;
            Ok(count < 3)
        })
        .unwrap();
        assert_eq!(count, 3);
        assert!(log.io_stats().snapshot().log_bytes_scanned > 0);
    }

    #[test]
    fn segments_span_boundaries() {
        let log = LogManager::new(LogConfig::default());
        // Write > 2 MiB of records so several segments exist, with one record
        // likely straddling a boundary.
        let mut lsns = Vec::new();
        for i in 0..500 {
            lsns.push(log.append(&insert_rec(i, 5000)));
        }
        for &l in &lsns {
            let r = log.get_record(l).unwrap();
            assert_eq!(r.lsn, l);
        }
        assert!(log.total_bytes() > 2 * SEGMENT_BYTES);
    }

    #[test]
    fn truncation_drops_old_records() {
        let log = LogManager::new(LogConfig::default());
        let mut lsns = Vec::new();
        for i in 0..600 {
            let l = log.append(&insert_rec(i, 5000));
            log.append(&rec(i, LogPayload::Commit { at: Timestamp::from_secs(i) }));
            lsns.push(l);
        }
        log.flush_to(log.tail_lsn());
        let mid = lsns[300];
        let new_trunc = log.truncate_before(mid);
        assert!(new_trunc <= mid);
        assert!(new_trunc > Lsn::FIRST);
        assert!(matches!(log.get_record(lsns[0]), Err(Error::LogTruncated(_))));
        assert!(log.get_record(lsns[400]).is_ok());
        assert!(log.retained_bytes() < log.total_bytes());
        // earliest retained time reflects truncation
        let t = log.earliest_retained_time().unwrap();
        assert!(t > Timestamp::ZERO);
    }

    #[test]
    fn truncation_never_passes_unflushed_tail() {
        let log = LogManager::new(LogConfig::default());
        for i in 0..600 {
            log.append(&insert_rec(i, 5000));
        }
        // nothing flushed: truncate_before must not remove anything
        let t = log.truncate_before(log.tail_lsn());
        assert_eq!(t, Lsn::FIRST);
    }

    #[test]
    fn checkpoint_directory() {
        let log = LogManager::new(LogConfig::default());
        log.append(&insert_rec(1, 10));
        let b1 = log.append(&rec(0, LogPayload::CheckpointBegin { at: Timestamp::from_secs(5) }));
        let e1 = log.append(&rec(
            0,
            LogPayload::CheckpointEnd(CheckpointBody {
                at: Timestamp::from_secs(5),
                begin_lsn: b1,
                att: vec![],
                dpt: vec![],
            }),
        ));
        log.append(&insert_rec(1, 10));
        let b2 = log.append(&rec(0, LogPayload::CheckpointBegin { at: Timestamp::from_secs(9) }));
        let e2 = log.append(&rec(
            0,
            LogPayload::CheckpointEnd(CheckpointBody {
                at: Timestamp::from_secs(9),
                begin_lsn: b2,
                att: vec![],
                dpt: vec![],
            }),
        ));
        assert_eq!(log.checkpoints().len(), 2);
        assert_eq!(log.checkpoint_before(e2).unwrap().end_lsn, e2);
        assert_eq!(log.checkpoint_before(Lsn(e2.0 - 1)).unwrap().end_lsn, e1);
        assert_eq!(log.checkpoint_before_time(Timestamp::from_secs(7)).unwrap().end_lsn, e1);
        assert!(log.checkpoint_before_time(Timestamp::from_secs(1)).is_none());
    }

    #[test]
    fn cache_model_hits_tail_and_misses_cold_history() {
        let log = LogManager::new(LogConfig { hot_tail_bytes: 1024, cache_blocks: 2, ..LogConfig::default() });
        let mut lsns = Vec::new();
        for i in 0..2000 {
            lsns.push(log.append(&insert_rec(i, 900)));
        }
        // tail read: hit
        let s0 = log.io_stats().snapshot();
        log.get_record(*lsns.last().unwrap()).unwrap();
        let s1 = log.io_stats().snapshot();
        assert_eq!(s1.log_read_ios, s0.log_read_ios);
        assert_eq!(s1.log_cache_hits, s0.log_cache_hits + 1);
        // cold read: miss, then hit on re-read
        log.get_record(lsns[0]).unwrap();
        let s2 = log.io_stats().snapshot();
        assert_eq!(s2.log_read_ios, s1.log_read_ios + 1);
        log.get_record(lsns[0]).unwrap();
        let s3 = log.io_stats().snapshot();
        assert_eq!(s3.log_read_ios, s2.log_read_ios);
        // far-apart cold reads evict each other (cache_blocks = 2)
        log.get_record(lsns[500]).unwrap();
        log.get_record(lsns[1000]).unwrap();
        log.get_record(lsns[0]).unwrap(); // evicted by now
        let s4 = log.io_stats().snapshot();
        assert!(s4.log_read_ios >= s3.log_read_ios + 2);
    }

    #[test]
    fn get_past_tail_is_error() {
        let log = LogManager::new(LogConfig::default());
        log.append(&insert_rec(1, 10));
        assert!(log.get_record(log.tail_lsn()).is_err());
        assert!(log.get_record(Lsn(999_999)).is_err());
    }
}
