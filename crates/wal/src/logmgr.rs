//! The log manager: the append-only virtual log stream.
//!
//! The stream is a sequence of `[u32 length][u32 CRC-32C][record body]`
//! frames; a record's LSN is the byte offset of its length prefix. The
//! stream is held in fixed-size in-memory segments; truncation (retention
//! enforcement, §4.3) drops whole segments from the front.
//!
//! # Media hardening: checksummed frames
//!
//! Every frame carries a CRC-32C of its body, computed once at append time
//! (inside the same scratch-buffer pass that writes the length prefix) and
//! verified on every read — sealed-segment reads in [`SealedSeg::frame`],
//! tail reads under the writer mutex. A mismatch surfaces as a typed
//! [`Error::Corruption`] with [`CorruptionKind::LogBlock`] and the frame's
//! LSN, never as a garbage decode. Two degraded-mode policies follow:
//!
//! * **Tail corruption at restart** — [`LogManager::discard_corrupt_tail`]
//!   forward-verifies every retained frame and cuts the log at the first
//!   bad one, exactly as [`LogManager::discard_unflushed`] cuts at the
//!   flush point: whole later segments evaporate, the damaged segment is
//!   *replaced* by a shorter copy (sealed bytes are never mutated in
//!   place), and the time/checkpoint indexes are trimmed to the cut. A
//!   torn or bit-flipped device tail therefore recovers the longest clean
//!   record prefix.
//! * **Mid-retention corruption at read time** — random reads and scans
//!   return the typed error to the caller, which decides (page salvage
//!   fails, repair skips the region, queries abort) — the log itself never
//!   guesses around damage inside the retained window.
//!
//! The checkpoint directory is additionally mirrored into two alternating
//! checksummed **anchor slots** (InnoDB-style), written on every
//! checkpoint-end append. Crash simulation rebuilds the directory from the
//! newest valid anchor, so a corrupt latest anchor degrades to the older
//! one (a longer analysis scan, same answer) rather than losing the
//! directory.
//!
//! Random record reads (`get_record*`) are how `PreparePageAsOf` walks
//! per-page chains. Each read is classified as a *log cache hit* or a *log
//! I/O* through a simple cache model (hot tail + LRU of recently touched
//! blocks), because the number of undo log I/Os is exactly what the paper
//! measures in Fig. 11 and what makes log media latency matter (§6.2).
//!
//! # Concurrency: snapshot-published sealed segments
//!
//! The read path is built for heavy concurrent as-of traffic: many readers
//! walking backward chains must never contend with the appender or each
//! other.
//!
//! * **Sealed segments are immutable.** Once the active tail segment fills,
//!   it is *sealed*: its bytes move into an `Arc<[u8]>` that is never
//!   mutated again. Only the single active tail segment is ever written,
//!   and only under the writer mutex.
//! * **Epoch-style publication.** The set of sealed segments (plus the
//!   truncation point and the archive) lives in an immutable
//!   [`SealedIndex`] behind an `Arc`. Writers publish a new index on every
//!   seal/truncate/discard and bump a version counter; readers keep a
//!   thread-local cache of the latest index per log and revalidate with one
//!   atomic load. The hot read path therefore takes **no lock at all** —
//!   `get_record`, `scan` and the `*_deep` variants resolve entirely
//!   against the snapshot; only reads that land in the active tail segment
//!   fall back to the writer mutex.
//! * **Snapshot isolation for readers.** A reader holding a [`RecordRef`]
//!   (or a thread-local index) keeps the underlying `Arc<[u8]>` alive, so
//!   `truncate_before`/`discard_unflushed` can never invalidate an
//!   in-flight read — the segment memory is reclaimed when the last reader
//!   drops it. New reads observe the new index and fail with
//!   [`Error::LogTruncated`] as before.
//! * **Zero-copy reads.** A [`RecordRef`] borrows the record's bytes in
//!   place; [`LogRecord::decode_header`] and `LogPayloadView` decode the
//!   fixed header / borrowed payload without allocating, so header-only
//!   chain walks perform no per-record allocation.
//! * **Sharded cache model.** The block→tick LRU model is sharded by block
//!   so concurrent readers do not serialize on accounting; eviction picks
//!   the global minimum tick, keeping hit/IO classification identical to
//!   the previous single-map model for any serial read sequence.
//!
//! # Concurrency: the group-commit write path
//!
//! The commit path is the write-side twin of the snapshot read path: many
//! committers must not serialize on per-record mutex acquisitions or on one
//! flush apiece. Its shape:
//!
//! ```text
//!   committer A ─┐                      ┌─ park ──────────────┐
//!   committer B ─┼─ stamp+append        │                     │ woken only
//!   committer C ─┘  (ONE writer-mutex   ├─ enqueue commit LSN ┤ once their
//!                    acquisition per    │                     │ LSN is
//!                    batch, stamps      └─ leader: ONE        │ durable
//!                    monotone in LSN       flush_to(max LSN) ─┘
//!                    order)                + notify_all
//! ```
//!
//! * **Batched framing.** [`LogManager::append_batch`] frames a whole slice
//!   of records into the scratch buffer under a single writer-mutex
//!   acquisition, rewiring intra-batch `prev_lsn`/`prev_page_lsn` chains and
//!   writing each record's assigned LSN back into the slice. The batch
//!   becomes visible to readers atomically (one tail publication).
//! * **Stamping under the sequencer.** [`LogManager::append_stamped`] reads
//!   the wall clock *inside* the writer mutex and clamps it against the last
//!   stamp issued, so commit and checkpoint timestamps are monotone in LSN
//!   order — the binary-search invariant of SplitLSN (§5.1) and the
//!   checkpoint directory. `push_time` additionally clamps (and
//!   `debug_assert`s) so a non-monotone stamp from a raw `append` can never
//!   corrupt the sparse time index.
//! * **Coalesced flushing.** [`LogManager::flush_to`] is record-boundary
//!   precise: it makes durable exactly through the end of the record at the
//!   requested LSN and charges `log_bytes_written` for those bytes only —
//!   never for other transactions' unflushed tail. Concurrent requests
//!   coalesce: one leader performs a single sequential flush to the highest
//!   requested LSN and wakes exactly the followers it covered, so N
//!   concurrent commits pay one physical flush (`log_flushes` counts them;
//!   `commitbench` gates on flushes-per-commit < 1).
//!
//! **Flush-accounting invariant:** `log_bytes_written` grows by precisely
//! the framed bytes made durable by explicit flush requests; `flushed_lsn`
//! always lands on a record boundary (or the tail) and never exceeds the
//! tail, even under a racing `discard_unflushed`.

use crate::record::{LogPayload, LogPayloadView, LogRecord, LogRecordHeader};
use parking_lot::{Condvar, Mutex};
use rewind_common::codec::{read_u32_at, read_u64_at};
use rewind_common::{crc32c, Error, IoStats, Lsn, PageId, Result, Timestamp, TxnId};
use rewind_obs::{EventKind, Obs, ObsConfig};
use std::cell::RefCell;
use std::collections::HashMap;
use std::ops::Range;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;

/// Size of one in-memory log segment.
const SEGMENT_BYTES: u64 = 1 << 20;
/// Bytes of frame header preceding each record body:
/// `[u32 length][u32 CRC-32C of body]`.
const FRAME_HEADER: usize = 8;
/// Bounded retry budget for a transiently-failing physical flush. Each
/// attempt consumes one injected fault token; a real device failing this
/// many consecutive write barriers is dead, not transient.
const MAX_FLUSH_RETRIES: u32 = 8;
/// Encoded size of one checkpoint anchor slot:
/// `[u64 seq][u64 end_lsn][u64 begin_lsn][u64 at_micros][u32 CRC-32C]`.
const ANCHOR_SLOT_BYTES: usize = 36;
/// Cache-model block size: one "log page" worth of records.
const CACHE_BLOCK_BYTES: u64 = 64 * 1024;
/// Shards of the cache model's block map.
const CACHE_SHARDS: usize = 8;
/// Thread-local sealed-index cache entries kept per thread.
const TLS_CACHE_SLOTS: usize = 8;

/// Tuning knobs for the log manager.
#[derive(Clone, Debug)]
pub struct LogConfig {
    /// Reads within this many bytes of the log tail are always cache hits
    /// (the tail is in memory in any real system).
    pub hot_tail_bytes: u64,
    /// Number of 64 KiB blocks the read cache holds.
    pub cache_blocks: usize,
    /// Keep truncated segments as a *log archive* (the moral equivalent of
    /// incremental log backups, paper §1). Archived log is out of retention
    /// for the as-of machinery but remains readable to point-in-time
    /// restore via the `*_deep` methods.
    pub archive_on_truncate: bool,
    /// Modeled latency of one physical flush, in microseconds (a device
    /// write barrier / fsync). `0` (the default) makes flushes instantaneous
    /// — correct for tests — while benchmarks set a realistic sync latency
    /// so the group-commit coalescer engages the way it would against real
    /// media.
    pub flush_delay_us: u64,
    /// Observability configuration. The log manager is the first engine
    /// component constructed, so it owns the engine's [`Obs`] handle;
    /// every other layer (pool, snapshots, recovery, the database facade)
    /// shares it via [`LogManager::obs`].
    pub obs: ObsConfig,
}

impl Default for LogConfig {
    fn default() -> Self {
        LogConfig {
            hot_tail_bytes: 4 * 1024 * 1024,
            cache_blocks: 64,
            archive_on_truncate: false,
            flush_delay_us: 0,
            obs: ObsConfig::default(),
        }
    }
}

/// A checkpoint known to the log manager (directory entry).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct CheckpointInfo {
    /// LSN of the checkpoint-end record.
    pub end_lsn: Lsn,
    /// LSN of the matching checkpoint-begin record.
    pub begin_lsn: Lsn,
    /// Wall-clock time of the checkpoint.
    pub at: Timestamp,
}

/// One sealed (immutable) log segment.
#[derive(Clone)]
struct SealedSeg {
    start: u64,
    data: Arc<[u8]>,
}

impl SealedSeg {
    fn end(&self) -> u64 {
        self.start + self.data.len() as u64
    }

    /// Resolve the `[u32 length][u32 crc][body]` frame at `lsn`, returning
    /// the body's offset and length within this segment. The single place
    /// sealed frames are parsed: the length prefix is bounds-checked and the
    /// body is verified against its CRC-32C, so a bit flip or torn frame
    /// surfaces here as a typed [`CorruptionKind::LogBlock`] error instead
    /// of reaching the record decoder.
    fn frame(&self, lsn: Lsn, stats: &IoStats) -> Result<(usize, usize)> {
        let off = (lsn.0 - self.start) as usize;
        if off + FRAME_HEADER > self.data.len() {
            return Err(Error::log_corruption(
                lsn,
                format!("log read at {lsn} past segment end"),
            ));
        }
        let len = read_u32_at(&self.data, off) as usize;
        if off + FRAME_HEADER + len > self.data.len() {
            return Err(Error::log_corruption(
                lsn,
                format!("log record at {lsn} overruns segment"),
            ));
        }
        let stored = read_u32_at(&self.data, off + 4);
        let body = &self.data[off + FRAME_HEADER..off + FRAME_HEADER + len];
        let actual = crc32c(body);
        if stored != actual {
            stats.add_corruption_detected();
            return Err(Error::log_corruption(
                lsn,
                format!("frame crc mismatch (stored {stored:08x}, computed {actual:08x})"),
            ));
        }
        Ok((off + FRAME_HEADER, len))
    }
}

/// An immutable snapshot of everything readers need: the sealed segments,
/// the archive, and the truncation point. Published via `Arc` swap;
/// monotonically versioned.
struct SealedIndex {
    version: u64,
    /// Offsets below this have been truncated away.
    trunc: u64,
    /// End of sealed data == start offset of the active tail segment.
    sealed_end: u64,
    /// Retained sealed segments, ascending by start, contiguous.
    segs: Vec<SealedSeg>,
    /// Truncated segments retained as the log archive (oldest first).
    archive: Vec<SealedSeg>,
}

impl SealedIndex {
    fn lookup(segs: &[SealedSeg], off: u64) -> Option<&SealedSeg> {
        let idx = segs.partition_point(|s| s.start <= off);
        if idx == 0 {
            return None;
        }
        let seg = &segs[idx - 1];
        if off < seg.end() {
            Some(seg)
        } else {
            None
        }
    }
}

/// Per-thread cache of published indexes, plus the [`LOG_RETIRE_EPOCH`] value
/// it was last validated against.
struct TlsIndexCache {
    retire_epoch: u64,
    entries: Vec<(u64, Arc<SealedIndex>)>,
}

thread_local! {
    /// Per-thread cache of the latest published [`SealedIndex`] per log
    /// manager (keyed by [`LogManager::id`]), revalidated against the log's
    /// version counter with a single atomic load. Bounded LRU so threads
    /// touching many logs do not grow without limit, and flushed whenever
    /// any log retires segment memory (see [`LOG_RETIRE_EPOCH`]) so dead
    /// logs and truncated segments are not pinned by idle threads.
    static TLS_INDEXES: RefCell<TlsIndexCache> =
        const { RefCell::new(TlsIndexCache { retire_epoch: 0, entries: Vec::new() }) };
}

static NEXT_LOG_ID: AtomicU64 = AtomicU64::new(1);

/// Bumped whenever log memory is retired: a [`LogManager`] drops, or a
/// live log truncates/discards segments away. Threads compare it against
/// their cached value on the next read and clear their whole index cache
/// on mismatch — cheap (retirement is rare; a cleared entry is one `Arc`
/// clone to refetch) and it stops idle threads' thread-local snapshots from
/// pinning dead logs or truncated segments indefinitely.
static LOG_RETIRE_EPOCH: AtomicU64 = AtomicU64::new(0);

/// Writer-side state: the active tail segment and the append-path
/// bookkeeping. Everything here is touched only under the writer mutex.
struct LogInner {
    /// Bytes of the active (still growing) segment.
    active: Vec<u8>,
    /// Offset of `active[0]` in the log stream.
    active_start: u64,
    /// Next byte offset to be written.
    tail: u64,
    /// Reusable frame-encoding buffer: appends serialize into this and then
    /// copy once into the active segment (no per-append allocation).
    scratch: Vec<u8>,
    /// Checkpoint directory, ascending by LSN. Shared out to readers as a
    /// cheap `Arc` clone; copy-on-write on the rare mutation.
    checkpoints: Arc<Vec<CheckpointInfo>>,
    /// Sparse time index: (lsn, wall clock) sampled at commits/checkpoints,
    /// ascending. Supports retention decisions and split search narrowing.
    time_index: Vec<(Lsn, Timestamp)>,
    /// Highest commit/checkpoint stamp seen so far; `append_stamped` and
    /// `push_time` clamp against it so stamps stay monotone in LSN order.
    last_stamp: Timestamp,
    /// Two alternating checksummed checkpoint anchor slots (the durable
    /// image of the directory's newest entries): slot `seq % 2` is
    /// overwritten on each checkpoint-end append, so the previous anchor is
    /// always intact while the newer one is being written. `None` = never
    /// written.
    anchor_slots: [Option<[u8; ANCHOR_SLOT_BYTES]>; 2],
    /// Sequence number of the next anchor write (selects the slot).
    anchor_seq: u64,
}

/// Encode one checkpoint anchor slot:
/// `[u64 seq][u64 end_lsn][u64 begin_lsn][u64 at_micros][u32 CRC-32C]`.
fn encode_anchor(seq: u64, info: &CheckpointInfo) -> [u8; ANCHOR_SLOT_BYTES] {
    let mut slot = [0u8; ANCHOR_SLOT_BYTES];
    slot[0..8].copy_from_slice(&seq.to_le_bytes());
    slot[8..16].copy_from_slice(&info.end_lsn.0.to_le_bytes());
    slot[16..24].copy_from_slice(&info.begin_lsn.0.to_le_bytes());
    slot[24..32].copy_from_slice(&info.at.as_micros().to_le_bytes());
    let crc = crc32c(&slot[..32]);
    slot[32..36].copy_from_slice(&crc.to_le_bytes());
    slot
}

/// Decode and CRC-validate one anchor slot. `None` if the slot's checksum
/// does not match its contents (a torn or bit-flipped anchor write).
fn decode_anchor(slot: &[u8; ANCHOR_SLOT_BYTES]) -> Option<(u64, CheckpointInfo)> {
    let stored = read_u32_at(slot, 32);
    if crc32c(&slot[..32]) != stored {
        return None;
    }
    let seq = read_u64_at(slot, 0);
    let info = CheckpointInfo {
        end_lsn: Lsn(read_u64_at(slot, 8)),
        begin_lsn: Lsn(read_u64_at(slot, 16)),
        at: Timestamp::from_micros(read_u64_at(slot, 24)),
    };
    Some((seq, info))
}

/// Flush requests coalesced behind a single leader (group commit).
struct FlushQueue {
    /// Highest record-end byte offset any waiter has requested and not yet
    /// seen durable. Clamped back by `discard_unflushed` so a discarded
    /// request can never cause a later over-flush.
    requested: u64,
    /// Whether a leader is currently performing a physical flush.
    leader_active: bool,
}

/// The sharded cache model: block id → last-use tick. Sharding keeps
/// concurrent readers from serializing on accounting; eviction picks the
/// globally least-recently-used block, so for any serial sequence of reads
/// the hit/IO classification is identical to a single LRU map.
struct ReadCache {
    shards: Vec<Mutex<HashMap<u64, u64>>>,
    tick: AtomicU64,
    len: AtomicUsize,
}

impl ReadCache {
    fn new() -> ReadCache {
        ReadCache {
            shards: (0..CACHE_SHARDS)
                .map(|_| Mutex::new(HashMap::new()))
                .collect(),
            tick: AtomicU64::new(0),
            len: AtomicUsize::new(0),
        }
    }

    /// Classify a random read at `off` as hit or I/O and update the model.
    fn classify(&self, off: u64, tail: u64, config: &LogConfig, stats: &IoStats) {
        if tail.saturating_sub(off) <= config.hot_tail_bytes {
            stats.add_log_cache_hit();
            return;
        }
        let block = off / CACHE_BLOCK_BYTES;
        let tick = self.tick.fetch_add(1, Ordering::Relaxed) + 1;
        let shard = &self.shards[(block as usize) % CACHE_SHARDS];
        {
            let mut map = shard.lock();
            if let Some(t) = map.get_mut(&block) {
                *t = tick;
                stats.add_log_cache_hit();
                return;
            }
            map.insert(block, tick);
        }
        stats.add_log_read_io();
        if self.len.fetch_add(1, Ordering::Relaxed) + 1 > config.cache_blocks {
            self.evict_lru();
        }
    }

    /// Evict the globally least-recently-used block (linear scan; the cache
    /// is small and this path is already "an I/O").
    fn evict_lru(&self) {
        let mut victim: Option<(usize, u64, u64)> = None;
        for (i, shard) in self.shards.iter().enumerate() {
            let map = shard.lock();
            if let Some((&block, &tick)) = map.iter().min_by_key(|(_, &t)| t) {
                if victim.is_none_or(|(_, _, vt)| tick < vt) {
                    victim = Some((i, block, tick));
                }
            }
        }
        if let Some((i, block, _)) = victim {
            if self.shards[i].lock().remove(&block).is_some() {
                self.len.fetch_sub(1, Ordering::Relaxed);
            }
        }
    }

    fn clear(&self) {
        for shard in &self.shards {
            shard.lock().clear();
        }
        self.len.store(0, Ordering::Relaxed);
    }
}

/// A zero-copy handle to one log record's bytes.
///
/// Holds the containing segment's `Arc<[u8]>`, so the bytes stay valid (and
/// the record readable) even if the log truncates or seals concurrently —
/// this is the reader-side half of the snapshot-isolation contract.
///
/// `Clone` bumps the segment `Arc` only; no record bytes are copied. A
/// clone is `Send`, which is what lets the partitioned-redo dispatcher
/// hand records to worker threads without materializing them.
#[derive(Clone)]
pub struct RecordRef {
    data: Arc<[u8]>,
    off: usize,
    len: usize,
    lsn: Lsn,
}

impl RecordRef {
    /// The record's LSN.
    pub fn lsn(&self) -> Lsn {
        self.lsn
    }

    /// The serialized record body (without the length prefix).
    pub fn body(&self) -> &[u8] {
        &self.data[self.off..self.off + self.len]
    }

    /// Total framed length (length prefix + CRC + body): the distance to
    /// the next record's LSN.
    pub fn frame_len(&self) -> u64 {
        self.len as u64 + FRAME_HEADER as u64
    }

    /// Decode only the fixed header fields — no payload walk, no allocation.
    pub fn header(&self) -> Result<LogRecordHeader> {
        LogRecord::decode_header(self.lsn, self.body())
    }

    /// Decode the header plus a borrowed payload view (allocation-free).
    pub fn view(&self) -> Result<(LogRecordHeader, LogPayloadView<'_>)> {
        LogRecord::decode_view(self.lsn, self.body())
    }

    /// Materialize the full owned record (the only step that copies).
    pub fn decode(&self) -> Result<LogRecord> {
        LogRecord::decode(self.lsn, self.body())
    }
}

/// The write-ahead log manager. Thread-safe; shared via `Arc`.
pub struct LogManager {
    /// Process-unique id, keying the thread-local index cache.
    id: u64,
    inner: Mutex<LogInner>,
    /// The latest published sealed index. Readers clone the `Arc` out only
    /// when their thread-local copy's version is stale.
    published: Mutex<Arc<SealedIndex>>,
    /// Version of the latest published index (monotonic).
    version: AtomicU64,
    /// Mirror of `LogInner::tail`, for lock-free bounds checks.
    tail: AtomicU64,
    flushed: AtomicU64,
    /// Group-commit coalescer state; followers park on `flush_cv`.
    flush_queue: Mutex<FlushQueue>,
    flush_cv: Condvar,
    cache: ReadCache,
    stats: Arc<IoStats>,
    /// The engine's observability handle (event ring + histograms); see
    /// [`LogConfig::obs`] for why it lives here.
    obs: Arc<Obs>,
    config: LogConfig,
    /// Fault injection: number of upcoming physical flush attempts that
    /// fail transiently (each attempt consumes one token). The leader's
    /// bounded retry loop absorbs them; see [`LogManager::set_flush_faults`].
    flush_faults: AtomicU64,
}

impl LogManager {
    /// A fresh, empty log.
    pub fn new(config: LogConfig) -> Self {
        LogManager {
            id: NEXT_LOG_ID.fetch_add(1, Ordering::Relaxed),
            inner: Mutex::new(LogInner {
                active: Vec::new(),
                active_start: Lsn::FIRST.0,
                tail: Lsn::FIRST.0,
                scratch: Vec::new(),
                checkpoints: Arc::new(Vec::new()),
                time_index: Vec::new(),
                last_stamp: Timestamp::ZERO,
                anchor_slots: [None, None],
                anchor_seq: 0,
            }),
            published: Mutex::new(Arc::new(SealedIndex {
                version: 1,
                trunc: Lsn::FIRST.0,
                sealed_end: Lsn::FIRST.0,
                segs: Vec::new(),
                archive: Vec::new(),
            })),
            version: AtomicU64::new(1),
            tail: AtomicU64::new(Lsn::FIRST.0),
            flushed: AtomicU64::new(Lsn::FIRST.0),
            flush_queue: Mutex::new(FlushQueue {
                requested: Lsn::FIRST.0,
                leader_active: false,
            }),
            flush_cv: Condvar::new(),
            cache: ReadCache::new(),
            stats: Arc::new(IoStats::new()),
            obs: Arc::new(Obs::new(&config.obs)),
            config,
            flush_faults: AtomicU64::new(0),
        }
    }

    /// Fault injection: make the next `n` physical flush attempts fail
    /// transiently (a device EIO that clears on retry). The leader retries
    /// with bounded backoff — followers stay parked until the retry
    /// actually succeeds, never waking on a failed attempt — and each retry
    /// is counted in [`IoStats::add_io_retry`].
    pub fn set_flush_faults(&self, n: u64) {
        self.flush_faults.store(n, Ordering::Release);
    }

    /// The shared I/O counters for this log.
    pub fn io_stats(&self) -> &Arc<IoStats> {
        &self.stats
    }

    /// The engine's observability handle. Layers built on top of the log
    /// (buffer pool, snapshots, recovery) clone this instead of carrying
    /// their own configuration — the engine's `Obs` *is* the log's `Obs`.
    pub fn obs(&self) -> &Arc<Obs> {
        &self.obs
    }

    /// Run `f` against the current sealed index: one atomic version check
    /// against the thread-local copy; falls back to cloning the published
    /// `Arc` (the only locked step, taken once per publication, not per
    /// read). The borrow-based shape lets hot paths read segment bytes with
    /// no refcount traffic at all. `f` must not reenter the log's read path.
    fn with_sealed<R>(&self, f: impl FnOnce(&Arc<SealedIndex>) -> R) -> R {
        let version = self.version.load(Ordering::Acquire);
        let retire_epoch = LOG_RETIRE_EPOCH.load(Ordering::Acquire);
        TLS_INDEXES.with(|cell| {
            let mut cache = cell.borrow_mut();
            if cache.retire_epoch != retire_epoch {
                // Some log manager dropped since this thread last read:
                // release every cached index so dead segments are freed.
                cache.entries.clear();
                cache.retire_epoch = retire_epoch;
            }
            let entries = &mut cache.entries;
            let pos = match entries.iter().position(|(id, _)| *id == self.id) {
                Some(pos) => {
                    if entries[pos].1.version < version {
                        entries[pos].1 = self.published.lock().clone();
                    }
                    pos
                }
                None => {
                    let fresh = self.published.lock().clone();
                    if entries.len() >= TLS_CACHE_SLOTS {
                        entries.remove(0);
                    }
                    entries.push((self.id, fresh));
                    entries.len() - 1
                }
            };
            f(&entries[pos].1)
        })
    }

    /// Clone out the current sealed index (for reads that outlive the
    /// thread-local borrow — i.e. everything returning a [`RecordRef`]).
    fn load_sealed(&self) -> Arc<SealedIndex> {
        self.with_sealed(Arc::clone)
    }

    /// Publish a new sealed index. Callers hold the writer mutex, so
    /// publications are serialized; the version bump is the readers' cue.
    fn publish(&self, index: SealedIndex) {
        let version = index.version;
        *self.published.lock() = Arc::new(index);
        self.version.store(version, Ordering::Release);
    }

    /// Seal the active segment into the published index. Writer mutex held.
    fn seal_active(&self, inner: &mut LogInner) {
        if inner.active.is_empty() {
            return;
        }
        let data: Arc<[u8]> = Arc::from(std::mem::take(&mut inner.active).into_boxed_slice());
        let start = inner.active_start;
        inner.active_start = start + data.len() as u64;
        let old = self.published.lock().clone();
        let mut segs = old.segs.clone();
        segs.push(SealedSeg { start, data });
        self.publish(SealedIndex {
            version: old.version + 1,
            trunc: old.trunc,
            sealed_end: inner.active_start,
            segs,
            archive: old.archive.clone(),
        });
    }

    /// Frame one record into the active segment. Writer mutex held; the
    /// caller publishes `inner.tail` to the atomic mirror when its batch is
    /// complete (so a multi-record batch becomes visible to readers
    /// atomically).
    fn append_locked(&self, inner: &mut LogInner, rec: &LogRecord) -> Lsn {
        let lsn = Lsn(inner.tail);
        // Frame into the reusable scratch buffer: [u32 length][u32 crc][body].
        let mut scratch = std::mem::take(&mut inner.scratch);
        scratch.clear();
        scratch.extend_from_slice(&[0u8; FRAME_HEADER]);
        rec.encode_into(&mut scratch);
        let body_len = scratch.len() - FRAME_HEADER;
        let crc = crc32c(&scratch[FRAME_HEADER..]);
        scratch[..4].copy_from_slice(&(body_len as u32).to_le_bytes());
        scratch[4..8].copy_from_slice(&crc.to_le_bytes());
        // Records never straddle segments (a segment is sealed early rather
        // than split a record), so truncation at segment granularity always
        // lands on a record boundary. A record larger than `SEGMENT_BYTES`
        // lands alone in one oversized segment: the empty-active check means
        // it is never split, and the *next* append seals it.
        if !inner.active.is_empty() && inner.active.len() + scratch.len() > SEGMENT_BYTES as usize {
            self.seal_active(inner);
        }
        inner.active.extend_from_slice(&scratch);
        inner.tail += scratch.len() as u64;
        inner.scratch = scratch;
        // Index commit/checkpoint times for retention & split search.
        match &rec.payload {
            LogPayload::Commit { at } | LogPayload::CheckpointBegin { at } => {
                let at = *at;
                inner.push_time(lsn, at);
            }
            LogPayload::CheckpointEnd(body) => {
                let info = CheckpointInfo {
                    end_lsn: lsn,
                    begin_lsn: body.begin_lsn,
                    at: body.at,
                };
                Arc::make_mut(&mut inner.checkpoints).push(info);
                // Mirror the entry into the alternating anchor slots: the
                // durable half of the directory. Writing slot `seq % 2`
                // leaves the previous anchor untouched, so a torn anchor
                // write can never destroy both.
                let seq = inner.anchor_seq;
                inner.anchor_slots[(seq % 2) as usize] = Some(encode_anchor(seq, &info));
                inner.anchor_seq = seq + 1;
                let at = body.at;
                inner.push_time(lsn, at);
            }
            _ => {}
        }
        lsn
    }

    /// Append a record; assigns and returns its LSN. The record is in memory
    /// (not durable) until [`LogManager::flush_to`] covers it.
    pub fn append(&self, rec: &LogRecord) -> Lsn {
        let mut inner = self.inner.lock();
        let lsn = self.append_locked(&mut inner, rec);
        self.tail.store(inner.tail, Ordering::Release);
        lsn
    }

    /// Append a slice of records under ONE writer-mutex acquisition,
    /// returning the LSN range they occupy (`start` of the first record to
    /// one past the last). This is the batched half of group commit: a
    /// transaction's records are framed together instead of paying one mutex
    /// round-trip each, and the whole batch becomes visible to readers
    /// atomically.
    ///
    /// Chains are rewired *inside* the batch, because callers cannot know
    /// intermediate LSNs up front: a record's `prev_lsn` is pointed at the
    /// nearest preceding batch record of the same (valid) transaction, and
    /// its `prev_page_lsn` at the nearest preceding batch record touching
    /// the same (valid) page. The first record of each transaction/page in
    /// the batch keeps its caller-provided linkage. Each record's assigned
    /// LSN is written back into `rec.lsn`.
    pub fn append_batch(&self, recs: &mut [LogRecord]) -> Range<Lsn> {
        let mut inner = self.inner.lock();
        let first = Lsn(inner.tail);
        // Batches are small; linear probes beat hashing here.
        let mut txn_last: Vec<(TxnId, Lsn)> = Vec::new();
        let mut page_last: Vec<(PageId, Lsn)> = Vec::new();
        for rec in recs.iter_mut() {
            if rec.txn.is_valid() {
                if let Some(&(_, last)) = txn_last.iter().find(|(t, _)| *t == rec.txn) {
                    rec.prev_lsn = last;
                }
            }
            if rec.page.is_valid() {
                if let Some(&(_, last)) = page_last.iter().find(|(p, _)| *p == rec.page) {
                    rec.prev_page_lsn = last;
                }
            }
            let lsn = self.append_locked(&mut inner, rec);
            rec.lsn = lsn;
            if rec.txn.is_valid() {
                match txn_last.iter_mut().find(|(t, _)| *t == rec.txn) {
                    Some(e) => e.1 = lsn,
                    None => txn_last.push((rec.txn, lsn)),
                }
            }
            if rec.page.is_valid() {
                match page_last.iter_mut().find(|(p, _)| *p == rec.page) {
                    Some(e) => e.1 = lsn,
                    None => page_last.push((rec.page, lsn)),
                }
            }
        }
        let end = Lsn(inner.tail);
        self.tail.store(inner.tail, Ordering::Release);
        first..end
    }

    /// Append a commit/checkpoint record, reading its wall-clock stamp from
    /// `now` *inside* the writer mutex. Folding the stamp into the append's
    /// mutex acquisition is what makes stamps monotone in LSN order without
    /// a second lock around the commit path: the stamp is additionally
    /// clamped against the last stamp issued, so even a non-monotone clock
    /// (or two clocks racing) cannot produce an out-of-order stamp. The
    /// stamped record is written back through `rec`.
    ///
    /// Returns `record LSN .. frame end`. The end is the exact byte target
    /// a committer needs durable — pass it to [`LogManager::flush_up_to`]
    /// so the flush does not have to re-acquire the writer mutex just to
    /// re-measure the frame it appended.
    pub fn append_stamped(&self, rec: &mut LogRecord, now: &dyn Fn() -> Timestamp) -> Range<Lsn> {
        let mut inner = self.inner.lock();
        let at = now().max(inner.last_stamp);
        rec.payload.set_stamp(at);
        let lsn = self.append_locked(&mut inner, rec);
        rec.lsn = lsn;
        let end = Lsn(inner.tail);
        self.tail.store(inner.tail, Ordering::Release);
        lsn..end
    }

    /// Next LSN that will be assigned (the current end of the log).
    pub fn tail_lsn(&self) -> Lsn {
        Lsn(self.tail.load(Ordering::Acquire))
    }

    /// Oldest LSN still present (truncation point).
    pub fn truncation_point(&self) -> Lsn {
        Lsn(self.load_sealed().trunc)
    }

    /// Highest LSN known durable.
    pub fn flushed_lsn(&self) -> Lsn {
        Lsn(self.flushed.load(Ordering::Acquire))
    }

    /// Force the log up to (and including the record at) `lsn`.
    ///
    /// Record-boundary precise: exactly the bytes through the *end of the
    /// frame at `lsn`* are made durable and charged as `log_bytes_written`
    /// — never the rest of the tail, so a committer is accounted only its
    /// own frames, not other in-flight transactions' unflushed bytes.
    /// `lsn` at or past the tail means "flush everything" (the
    /// `flush_to(tail_lsn())` idiom).
    ///
    /// Concurrent requests are *coalesced*: one leader performs a single
    /// sequential flush covering every enqueued request and wakes the
    /// followers it covered — N concurrent committers pay one physical
    /// flush (counted in `log_flushes`). Returns only once the requested
    /// record is durable (or has been discarded by crash simulation).
    pub fn flush_to(&self, lsn: Lsn) {
        let Some(target) = self.flush_target(lsn) else {
            return;
        };
        self.flush_bytes(target);
    }

    /// Force the log up to, but *not* including, the record boundary `excl`
    /// — e.g. a SplitLSN, where everything strictly before the split must be
    /// durable but the record at the split does not.
    pub fn flush_up_to(&self, excl: Lsn) {
        let target = excl.0.min(self.tail.load(Ordering::Acquire));
        self.flush_bytes(target);
    }

    /// The byte offset that makes the record at `lsn` durable: the end of
    /// its frame, or the current tail for `lsn` at/past the tail. `None`
    /// when there is nothing to do — the record was truncated away
    /// (truncation never passes the flushed LSN, so it is already durable)
    /// or does not resolve.
    fn flush_target(&self, lsn: Lsn) -> Option<u64> {
        loop {
            let tail = self.tail.load(Ordering::Acquire);
            if lsn.0 >= tail {
                return Some(tail);
            }
            let index = self.load_sealed();
            if lsn.0 < index.trunc {
                return None;
            }
            if lsn.0 < index.sealed_end {
                if let Some(seg) = SealedIndex::lookup(&index.segs, lsn.0) {
                    if let Ok((body_off, len)) = seg.frame(lsn, &self.stats) {
                        return Some(seg.start + (body_off + len) as u64);
                    }
                }
                // Anomalous LSN (mid-record offset, corrupt length prefix):
                // fall back to flushing the whole tail rather than silently
                // skipping — callers like the buffer pool's write-back rely
                // on flush_to upholding the WAL rule unconditionally.
                return Some(tail);
            }
            let inner = self.inner.lock();
            if inner.active_start > lsn.0 {
                // Sealed between the snapshot load and the lock; retry.
                continue;
            }
            if lsn.0 + FRAME_HEADER as u64 > inner.tail {
                // Raced a discard; flush whatever still exists.
                return Some(inner.tail);
            }
            let off = (lsn.0 - inner.active_start) as usize;
            let len = read_u32_at(&inner.active, off) as u64;
            return Some((lsn.0 + FRAME_HEADER as u64 + len).min(inner.tail));
        }
    }

    /// Make everything below byte offset `target` durable, coalescing with
    /// concurrent requests (leader/follower). Followers are woken only once
    /// their target is covered; a request whose bytes were discarded by a
    /// racing `discard_unflushed` is abandoned, never spun on.
    fn flush_bytes(&self, target: u64) {
        if self.flushed.load(Ordering::Acquire) >= target {
            return;
        }
        let mut queue = self.flush_queue.lock();
        loop {
            if self.flushed.load(Ordering::Acquire) >= target {
                return;
            }
            if target > self.tail.load(Ordering::Acquire) {
                // The requested bytes no longer exist (crash simulation
                // discarded the unflushed tail); nothing to wait for.
                return;
            }
            if queue.requested < target {
                queue.requested = target;
            }
            if queue.leader_active {
                // Follower: park until the leader reports completion, then
                // re-check coverage (no wakeup before durability).
                let parked_at = self.obs.now_us();
                self.flush_cv.wait(&mut queue);
                self.obs.record(
                    EventKind::GroupFollowerWait,
                    target,
                    0,
                    self.obs.now_us().saturating_sub(parked_at),
                );
                continue;
            }
            // Leader: write everything requested so far in one sequential
            // flush.
            let want = queue.requested;
            queue.leader_active = true;
            drop(queue);
            let flush_started = self.obs.now_us();
            // Physical flush attempt, with bounded retry/backoff against
            // transient device errors. `leader_active` stays set across
            // retries, so followers remain parked through every failed
            // attempt and are only woken (below) after the flush that
            // actually succeeded — a follower can never observe a wakeup
            // for bytes that are not durable yet.
            let mut attempt = 0;
            loop {
                if self.config.flush_delay_us > 0 {
                    // Model the device's sync latency (fsync / write barrier).
                    std::thread::sleep(std::time::Duration::from_micros(
                        self.config.flush_delay_us,
                    ));
                }
                let transient_fault = self
                    .flush_faults
                    .fetch_update(Ordering::AcqRel, Ordering::Acquire, |n| n.checked_sub(1))
                    .is_ok();
                if !transient_fault || attempt >= MAX_FLUSH_RETRIES {
                    break;
                }
                attempt += 1;
                self.stats.add_io_retry();
                // Exponential backoff, capped: 10 µs, 20 µs, 40 µs, …
                std::thread::sleep(std::time::Duration::from_micros(10u64 << attempt.min(6)));
            }
            // The writer mutex is held across read-tail + advance-flushed so
            // a concurrent `discard_unflushed` can never observe (or create)
            // `flushed > tail`.
            let inner = self.inner.lock();
            let want = want.min(inner.tail);
            let prev = self.flushed.fetch_max(want, Ordering::AcqRel);
            drop(inner);
            if want > prev {
                self.stats.add_log_bytes_written(want - prev);
                self.stats.add_log_flush();
                // Recorded in the same branch as `add_log_flush` so the
                // flush-stall histogram count equals `log_flushes` exactly.
                let dur = self.obs.now_us().saturating_sub(flush_started);
                self.obs.flush_stall_us(dur);
                self.obs.record(EventKind::LogFlush, want, want - prev, dur);
                self.obs.record(EventKind::GroupLeaderFlush, want, 0, dur);
            }
            queue = self.flush_queue.lock();
            queue.leader_active = false;
            self.flush_cv.notify_all();
        }
    }

    /// Resolve a record's bytes without touching the cache model. Lock-free
    /// for any record in a sealed segment (or the archive, with `deep`);
    /// only tail-segment reads take the writer mutex, and those copy the
    /// frame out so the mutex is never held across decoding.
    fn read_ref_at(&self, lsn: Lsn, deep: bool) -> Result<RecordRef> {
        self.read_ref_in(self.load_sealed(), lsn, deep)
    }

    /// [`LogManager::read_ref_at`] against an already-loaded index, so hot
    /// callers that just consulted the snapshot pay only one load per read.
    fn read_ref_in(&self, index: Arc<SealedIndex>, lsn: Lsn, deep: bool) -> Result<RecordRef> {
        let mut index = index;
        loop {
            if lsn.0 < index.trunc {
                if deep {
                    if let Some(seg) = SealedIndex::lookup(&index.archive, lsn.0) {
                        return Self::ref_in_segment(seg, lsn, &self.stats);
                    }
                }
                return Err(Error::LogTruncated(lsn));
            }
            if lsn.0 < index.sealed_end {
                let seg = SealedIndex::lookup(&index.segs, lsn.0).ok_or_else(|| {
                    Error::corruption(format!("log offset {} out of range", lsn.0))
                })?;
                return Self::ref_in_segment(seg, lsn, &self.stats);
            }
            // Tail range: read under the writer mutex, copying the frame out.
            let inner = self.inner.lock();
            if inner.active_start > lsn.0 {
                // The segment sealed between snapshot load and lock
                // acquisition; the published version moved, retry.
                drop(inner);
                index = self.load_sealed();
                continue;
            }
            if lsn.0 + FRAME_HEADER as u64 > inner.tail {
                return Err(Error::log_corruption(
                    lsn,
                    format!("log read at {lsn} past tail {}", inner.tail),
                ));
            }
            let off = (lsn.0 - inner.active_start) as usize;
            let len = read_u32_at(&inner.active, off) as usize;
            if lsn.0 + (FRAME_HEADER + len) as u64 > inner.tail {
                return Err(Error::log_corruption(
                    lsn,
                    format!("log record at {lsn} overruns tail"),
                ));
            }
            let stored = read_u32_at(&inner.active, off + 4);
            let body_bytes = &inner.active[off + FRAME_HEADER..off + FRAME_HEADER + len];
            if crc32c(body_bytes) != stored {
                self.stats.add_corruption_detected();
                return Err(Error::log_corruption(
                    lsn,
                    format!("frame crc mismatch at {lsn} (tail)"),
                ));
            }
            let body: Arc<[u8]> = Arc::from(body_bytes);
            return Ok(RecordRef {
                data: body,
                off: 0,
                len,
                lsn,
            });
        }
    }

    fn ref_in_segment(seg: &SealedSeg, lsn: Lsn, stats: &IoStats) -> Result<RecordRef> {
        let (body_off, len) = seg.frame(lsn, stats)?;
        Ok(RecordRef {
            data: seg.data.clone(),
            off: body_off,
            len,
            lsn,
        })
    }

    /// Read the record at `lsn` as a zero-copy [`RecordRef`], accounting the
    /// read through the cache model. This is the chain-walk primitive:
    /// header and payload decode straight from the segment bytes.
    pub fn get_record_ref(&self, lsn: Lsn) -> Result<RecordRef> {
        let index = self.load_sealed();
        if lsn.0 < index.trunc {
            return Err(Error::LogTruncated(lsn));
        }
        self.cache.classify(
            lsn.0,
            self.tail.load(Ordering::Acquire),
            &self.config,
            &self.stats,
        );
        self.read_ref_in(index, lsn, false)
    }

    /// Read the fixed header of the record at `lsn` (cache-accounted).
    ///
    /// The fastest read the log offers: for sealed history the 50 header
    /// bytes are parsed in place through the thread-local index borrow — no
    /// lock, no allocation, not even refcount traffic.
    pub fn get_record_header(&self, lsn: Lsn) -> Result<LogRecordHeader> {
        let fast = self.with_sealed(|index| {
            if lsn.0 < index.trunc {
                return Some(Err(Error::LogTruncated(lsn)));
            }
            if lsn.0 >= index.sealed_end {
                return None; // tail range: slow path below
            }
            Some((|| {
                self.cache.classify(
                    lsn.0,
                    self.tail.load(Ordering::Acquire),
                    &self.config,
                    &self.stats,
                );
                let seg = SealedIndex::lookup(&index.segs, lsn.0).ok_or_else(|| {
                    Error::corruption(format!("log offset {} out of range", lsn.0))
                })?;
                let (body_off, len) = seg.frame(lsn, &self.stats)?;
                LogRecord::decode_header(lsn, &seg.data[body_off..body_off + len])
            })())
        });
        match fast {
            Some(result) => result,
            None => self.get_record_ref(lsn)?.header(),
        }
    }

    /// Read the record at `lsn`, accounting the read through the cache model.
    pub fn get_record(&self, lsn: Lsn) -> Result<LogRecord> {
        self.get_record_ref(lsn)?.decode()
    }

    /// Iterate records in `[from, to)` in order, invoking `f` for each.
    /// Returns the LSN one past the last record visited. Sequential bytes
    /// are accounted as `log_bytes_scanned`. Lock-free over sealed history.
    pub fn scan(
        &self,
        from: Lsn,
        to: Lsn,
        mut f: impl FnMut(&LogRecord) -> Result<bool>,
    ) -> Result<Lsn> {
        self.scan_impl(from, to, false, &mut |rec_ref| f(&rec_ref.decode()?))
    }

    /// Like [`LogManager::scan`] but yielding borrowed header + payload
    /// views, skipping owned materialization entirely. The workhorse of
    /// analysis and SplitLSN search.
    pub fn scan_views(
        &self,
        from: Lsn,
        to: Lsn,
        mut f: impl FnMut(&LogRecordHeader, &LogPayloadView<'_>) -> Result<bool>,
    ) -> Result<Lsn> {
        self.scan_impl(from, to, false, &mut |rec_ref| {
            let (header, view) = rec_ref.view()?;
            f(&header, &view)
        })
    }

    fn scan_impl(
        &self,
        from: Lsn,
        to: Lsn,
        deep: bool,
        f: &mut dyn FnMut(&RecordRef) -> Result<bool>,
    ) -> Result<Lsn> {
        let mut cur = from;
        loop {
            let index = self.load_sealed();
            if !deep && cur.0 < index.trunc {
                return Err(Error::LogTruncated(cur));
            }
            if cur.0 >= self.tail.load(Ordering::Acquire) || cur >= to {
                return Ok(cur);
            }
            let rec_ref = self.read_ref_in(index, cur, deep)?;
            let frame = rec_ref.frame_len();
            self.stats.add_log_bytes_scanned(frame);
            if !f(&rec_ref)? {
                return Ok(Lsn(cur.0 + frame));
            }
            cur = Lsn(cur.0 + frame);
        }
    }

    /// The checkpoint directory (ascending by LSN), as a cheap shared view.
    pub fn checkpoints(&self) -> Arc<Vec<CheckpointInfo>> {
        self.inner.lock().checkpoints.clone()
    }

    /// Latest checkpoint whose *end* record is at or before `lsn`.
    /// Binary-searched: the directory is ascending by `end_lsn`.
    pub fn checkpoint_before(&self, lsn: Lsn) -> Option<CheckpointInfo> {
        let dir = self.checkpoints();
        let idx = dir.partition_point(|c| c.end_lsn <= lsn);
        (idx > 0).then(|| dir[idx - 1])
    }

    /// Latest checkpoint taken at or before wall-clock `t`. Binary-searched:
    /// checkpoint times are monotone in log order.
    pub fn checkpoint_before_time(&self, t: Timestamp) -> Option<CheckpointInfo> {
        let dir = self.checkpoints();
        let idx = dir.partition_point(|c| c.at <= t);
        (idx > 0).then(|| dir[idx - 1])
    }

    /// Earliest wall-clock time still covered by the retained log, if known.
    pub fn earliest_retained_time(&self) -> Option<Timestamp> {
        let trunc = self.load_sealed().trunc;
        let inner = self.inner.lock();
        let idx = inner.time_index.partition_point(|(l, _)| l.0 < trunc);
        inner.time_index.get(idx).map(|&(_, t)| t)
    }

    /// Best-known LSN at or before wall-clock time `t` from the sparse time
    /// index (starting point for the split search).
    pub fn time_index_floor(&self, t: Timestamp) -> Option<(Lsn, Timestamp)> {
        let inner = self.inner.lock();
        let idx = inner.time_index.partition_point(|&(_, ts)| ts <= t);
        (idx > 0).then(|| inner.time_index[idx - 1])
    }

    /// Drop whole segments that lie entirely before `lsn` (moving them to
    /// the archive when archiving is enabled). Returns the new truncation
    /// point. Never truncates past the flushed LSN.
    ///
    /// Publication, not destruction: readers holding the previous index or a
    /// [`RecordRef`] into a truncated segment keep reading it; the memory is
    /// freed when the last holder drops.
    pub fn truncate_before(&self, lsn: Lsn) -> Lsn {
        let archive_cfg = self.config.archive_on_truncate;
        // tidy: lock-order(log_inner < log_published) -- the writer mutex is
        // held across every published-index swap, never the reverse.
        let mut inner = self.inner.lock();
        let limit = lsn.0.min(self.flushed.load(Ordering::Acquire));
        let old = self.published.lock().clone();
        let mut segs = old.segs.clone();
        let mut archive = old.archive.clone();
        let mut trunc = old.trunc;
        let mut sealed_end = old.sealed_end;

        let drop_n = segs.iter().take_while(|s| s.end() <= limit).count();
        if drop_n > 0 {
            trunc = segs[drop_n - 1].end();
        }
        let removed: Vec<SealedSeg> = segs.drain(..drop_n).collect();
        let mut changed = !removed.is_empty();
        if archive_cfg {
            archive.extend(removed);
        }
        // The active tail is the last "segment": it truncates too once every
        // sealed segment before it is gone and it is itself fully covered.
        if segs.is_empty() && !inner.active.is_empty() {
            let end = inner.active_start + inner.active.len() as u64;
            if end <= limit {
                let data: Arc<[u8]> =
                    Arc::from(std::mem::take(&mut inner.active).into_boxed_slice());
                if archive_cfg {
                    archive.push(SealedSeg {
                        start: inner.active_start,
                        data,
                    });
                }
                inner.active_start = end;
                trunc = end;
                sealed_end = end;
                changed = true;
            }
        }
        if changed {
            self.publish(SealedIndex {
                version: old.version + 1,
                trunc,
                sealed_end,
                segs,
                archive,
            });
            // Segment memory was retired (freed, or moved to the archive of
            // a new index): cue other threads to drop stale snapshots.
            LOG_RETIRE_EPOCH.fetch_add(1, Ordering::Release);
        }
        inner.time_index.retain(|(l, _)| l.0 >= trunc);
        if !archive_cfg {
            let dir = Arc::make_mut(&mut inner.checkpoints);
            dir.retain(|c| c.begin_lsn.0 >= trunc);
        }
        Lsn(trunc)
    }

    /// Bytes held in the log archive.
    pub fn archived_bytes(&self) -> u64 {
        self.load_sealed()
            .archive
            .iter()
            .map(|s| s.data.len() as u64)
            .sum()
    }

    /// Earliest LSN readable through the deep (archive-aware) methods.
    pub fn earliest_available_lsn(&self) -> Lsn {
        let index = self.load_sealed();
        Lsn(index
            .archive
            .first()
            .map(|s| s.start)
            .unwrap_or(index.trunc))
    }

    /// Read a record, falling back to the archive for truncated history.
    /// Only point-in-time restore uses this — the as-of machinery stays
    /// retention-bound on purpose. Lock-free like [`LogManager::get_record`],
    /// without cache accounting.
    pub fn get_record_deep(&self, lsn: Lsn) -> Result<LogRecord> {
        self.read_ref_at(lsn, true)?.decode()
    }

    /// Like [`LogManager::scan`] but reading archived history too.
    pub fn scan_deep(
        &self,
        from: Lsn,
        to: Lsn,
        mut f: impl FnMut(&LogRecord) -> Result<bool>,
    ) -> Result<Lsn> {
        self.scan_impl(from, to, true, &mut |rec_ref| f(&rec_ref.decode()?))
    }

    /// Like [`LogManager::scan_views`] but reading archived history too.
    pub fn scan_views_deep(
        &self,
        from: Lsn,
        to: Lsn,
        mut f: impl FnMut(&LogRecordHeader, &LogPayloadView<'_>) -> Result<bool>,
    ) -> Result<Lsn> {
        self.scan_impl(from, to, true, &mut |rec_ref| {
            let (header, view) = rec_ref.view()?;
            f(&header, &view)
        })
    }

    /// Like [`LogManager::scan_views`] but yielding the zero-copy
    /// [`RecordRef`] itself, so the callback can `clone` it (an `Arc` bump)
    /// and ship it to another thread. The fan-out primitive of partitioned
    /// redo: the dispatcher scans once, workers decode in parallel.
    pub fn scan_refs(
        &self,
        from: Lsn,
        to: Lsn,
        mut f: impl FnMut(&RecordRef) -> Result<bool>,
    ) -> Result<Lsn> {
        self.scan_impl(from, to, false, &mut f)
    }

    /// Like [`LogManager::scan_refs`] but reading archived history too.
    pub fn scan_refs_deep(
        &self,
        from: Lsn,
        to: Lsn,
        mut f: impl FnMut(&RecordRef) -> Result<bool>,
    ) -> Result<Lsn> {
        self.scan_impl(from, to, true, &mut f)
    }

    /// Discard everything after the flushed LSN — what a crash does to the
    /// volatile log tail. Used by crash simulation before restart recovery.
    /// Everything at or below `flushed_lsn` survives; nothing after it does.
    pub fn discard_unflushed(&self) {
        let mut inner = self.inner.lock();
        let flushed = self.flushed.load(Ordering::Acquire);
        let old = self.published.lock().clone();
        let mut segs = old.segs.clone();
        // Whole sealed segments at or past the flush point evaporate.
        while segs.last().is_some_and(|s| s.start >= flushed) {
            segs.pop();
        }
        // The flush point may fall inside the last surviving sealed segment.
        if let Some(last) = segs.last_mut() {
            let keep = (flushed - last.start) as usize;
            if keep < last.data.len() {
                last.data = Arc::from(&last.data[..keep]);
            }
        }
        // And the active tail.
        if inner.active_start >= flushed {
            inner.active.clear();
        } else {
            let keep = (flushed - inner.active_start) as usize;
            if keep < inner.active.len() {
                inner.active.truncate(keep);
            }
        }
        inner.tail = flushed.max(old.trunc);
        if inner.active.is_empty() {
            inner.active_start = inner.tail;
        }
        self.tail.store(inner.tail, Ordering::Release);
        self.publish(SealedIndex {
            version: old.version + 1,
            trunc: old.trunc,
            sealed_end: inner.active_start,
            segs,
            archive: old.archive.clone(),
        });
        let tail = inner.tail;
        inner.time_index.retain(|(l, _)| l.0 < tail);
        // The in-memory checkpoint directory is volatile: what survives a
        // crash is the pair of checksummed anchor slots. Rebuild the
        // directory from the valid anchors (ascending by sequence), dropping
        // entries whose records did not survive the discarded tail. A
        // corrupt newest anchor therefore degrades to the older one —
        // analysis scans from an earlier checkpoint, same answer — and two
        // corrupt anchors degrade to a full scan from the truncation point.
        let mut anchors: Vec<(u64, CheckpointInfo)> = Vec::new();
        for bytes in inner.anchor_slots.iter().flatten() {
            match decode_anchor(bytes) {
                Some(entry) => anchors.push(entry),
                None => self.stats.add_corruption_detected(),
            }
        }
        anchors.sort_by_key(|&(seq, _)| seq);
        inner.checkpoints = Arc::new(
            anchors
                .into_iter()
                .map(|(_, info)| info)
                .filter(|c| c.end_lsn.0 < tail && c.begin_lsn.0 >= old.trunc)
                .collect(),
        );
        self.cache.clear();
        // Outstanding flush requests above the new tail point at bytes that
        // no longer exist: clamp them (so a stale high-water mark can never
        // cause a later over-flush) and wake every parked follower to
        // re-check — each sees its target past the tail and abandons it.
        {
            let mut queue = self.flush_queue.lock();
            queue.requested = queue.requested.min(tail);
            self.flush_cv.notify_all();
        }
        // Discarded tail segments are retired memory too.
        LOG_RETIRE_EPOCH.fetch_add(1, Ordering::Release);
    }

    /// Forward-verify every retained frame (length sanity + CRC-32C) and
    /// cut the log at the first damaged one, treating it as end-of-log —
    /// the restart-time half of the media-hardening contract. Returns the
    /// cut LSN when damage was found, `None` for a clean log.
    ///
    /// The cut has exactly the semantics of [`LogManager::discard_unflushed`]
    /// applied at the damage point: whole later segments evaporate, the
    /// damaged segment is *replaced* by a shorter copy (sealed bytes are
    /// never mutated in place), the flushed LSN is pulled back, and the
    /// time/checkpoint indexes are trimmed. Everything before the first bad
    /// frame — the longest clean durable prefix — stays readable.
    pub fn discard_corrupt_tail(&self) -> Option<Lsn> {
        /// First structurally-bad or CRC-bad frame offset in `data`, whose
        /// first byte sits at stream offset `base`. `data` is assumed to
        /// begin on a frame boundary (segments always do).
        fn first_bad_frame(base: u64, data: &[u8]) -> Option<u64> {
            let mut off = 0usize;
            while off < data.len() {
                if off + FRAME_HEADER > data.len() {
                    return Some(base + off as u64);
                }
                let len = read_u32_at(data, off) as usize;
                let Some(end) = (off + FRAME_HEADER).checked_add(len) else {
                    return Some(base + off as u64);
                };
                if end > data.len() {
                    return Some(base + off as u64);
                }
                let stored = read_u32_at(data, off + 4);
                if crc32c(&data[off + FRAME_HEADER..end]) != stored {
                    return Some(base + off as u64);
                }
                off = end;
            }
            None
        }

        let mut inner = self.inner.lock();
        let old = self.published.lock().clone();
        let mut cut: Option<u64> = None;
        for seg in &old.segs {
            if let Some(bad) = first_bad_frame(seg.start, &seg.data) {
                cut = Some(bad);
                break;
            }
        }
        if cut.is_none() {
            cut = first_bad_frame(inner.active_start, &inner.active);
        }
        let cut = cut?;
        self.stats.add_corruption_detected();

        let mut segs = old.segs.clone();
        while segs.last().is_some_and(|s| s.start >= cut) {
            segs.pop();
        }
        if let Some(last) = segs.last_mut() {
            let keep = (cut - last.start) as usize;
            if keep < last.data.len() {
                last.data = Arc::from(&last.data[..keep]);
            }
        }
        if inner.active_start >= cut {
            inner.active.clear();
        } else {
            let keep = (cut - inner.active_start) as usize;
            if keep < inner.active.len() {
                inner.active.truncate(keep);
            }
        }
        inner.tail = cut.max(old.trunc);
        if inner.active.is_empty() {
            inner.active_start = inner.tail;
        }
        self.tail.store(inner.tail, Ordering::Release);
        // The damaged bytes were "durable" on the failed media; the clean
        // prefix is the new durability horizon.
        let tail = inner.tail;
        if self.flushed.load(Ordering::Acquire) > tail {
            self.flushed.store(tail, Ordering::Release);
        }
        self.publish(SealedIndex {
            version: old.version + 1,
            trunc: old.trunc,
            sealed_end: inner.active_start,
            segs,
            archive: old.archive.clone(),
        });
        inner.time_index.retain(|(l, _)| l.0 < tail);
        Arc::make_mut(&mut inner.checkpoints).retain(|c| c.end_lsn.0 < tail);
        self.cache.clear();
        {
            let mut queue = self.flush_queue.lock();
            queue.requested = queue.requested.min(tail);
            self.flush_cv.notify_all();
        }
        LOG_RETIRE_EPOCH.fetch_add(1, Ordering::Release);
        Some(Lsn(cut))
    }

    /// Fault injection: XOR one byte of the retained log at stream offset
    /// `offset`. Sealed-segment immutability is preserved by *replacing*
    /// the containing segment with a freshly-corrupted copy and publishing
    /// a new index — live readers holding the old `Arc` keep the clean
    /// bytes; new reads see the damage. Returns `false` if the offset is
    /// not in the retained window.
    pub fn corrupt_byte_at(&self, offset: u64, xor: u8) -> bool {
        if xor == 0 {
            return false;
        }
        let mut inner = self.inner.lock();
        if offset >= inner.tail {
            return false;
        }
        if offset >= inner.active_start {
            let off = (offset - inner.active_start) as usize;
            if off >= inner.active.len() {
                return false;
            }
            inner.active[off] ^= xor;
            return true;
        }
        let old = self.published.lock().clone();
        let mut segs = old.segs.clone();
        for seg in segs.iter_mut() {
            if offset >= seg.start && offset < seg.end() {
                let mut data = seg.data.to_vec();
                data[(offset - seg.start) as usize] ^= xor;
                seg.data = Arc::from(data.into_boxed_slice());
                self.publish(SealedIndex {
                    version: old.version + 1,
                    trunc: old.trunc,
                    sealed_end: old.sealed_end,
                    segs,
                    archive: old.archive.clone(),
                });
                LOG_RETIRE_EPOCH.fetch_add(1, Ordering::Release);
                return true;
            }
        }
        false
    }

    /// Fault injection: flip a byte inside checkpoint anchor slot
    /// `slot % 2`, so its CRC no longer validates. Returns `false` if the
    /// slot was never written.
    pub fn corrupt_anchor_slot(&self, slot: usize) -> bool {
        let mut inner = self.inner.lock();
        match inner.anchor_slots[slot % 2].as_mut() {
            Some(bytes) => {
                bytes[8] ^= 0x40;
                true
            }
            None => false,
        }
    }

    /// The anchor slot holding the *newest* checkpoint anchor, if any
    /// anchor has been written (the other slot holds the previous one).
    pub fn newest_anchor_slot(&self) -> Option<usize> {
        let inner = self.inner.lock();
        (inner.anchor_seq > 0).then(|| ((inner.anchor_seq - 1) % 2) as usize)
    }

    /// Total bytes currently retained.
    pub fn retained_bytes(&self) -> u64 {
        self.tail.load(Ordering::Acquire) - self.load_sealed().trunc
    }

    /// Total bytes ever appended.
    pub fn total_bytes(&self) -> u64 {
        self.tail.load(Ordering::Acquire) - Lsn::FIRST.0
    }
}

impl Drop for LogManager {
    fn drop(&mut self) {
        // Cue every thread to flush its cached indexes (lazily, on its next
        // log read) so this log's sealed segments are not pinned in TLS.
        LOG_RETIRE_EPOCH.fetch_add(1, Ordering::Release);
    }
}

impl LogInner {
    fn push_time(&mut self, lsn: Lsn, at: Timestamp) {
        // Stamps must be monotone in LSN order — the binary-search invariant
        // of SplitLSN (§5.1) and `checkpoint_before_time`. `append_stamped`
        // guarantees it at the source; clamp (and loudly flag in debug
        // builds) anything that arrives out of order through a raw `append`
        // so one bad stamp cannot corrupt the index.
        debug_assert!(
            at >= self.last_stamp,
            "non-monotone commit/checkpoint stamp at {lsn}: {at:?} < {:?}",
            self.last_stamp
        );
        let at = at.max(self.last_stamp);
        self.last_stamp = at;
        // keep the index sparse: one entry per 64 KiB of log
        if self
            .time_index
            .last()
            .is_none_or(|&(l, _)| lsn.0 - l.0 >= 64 * 1024)
        {
            self.time_index.push((lsn, at));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::record::{CheckpointBody, LogPayload};
    use rewind_common::{CorruptionKind, ObjectId, PageId, TxnId};

    fn rec(txn: u64, payload: LogPayload) -> LogRecord {
        LogRecord {
            lsn: Lsn::NULL,
            txn: TxnId(txn),
            prev_lsn: Lsn::NULL,
            page: PageId(1),
            prev_page_lsn: Lsn::NULL,
            object: ObjectId(1),
            undo_next: Lsn::NULL,
            flags: 0,
            payload,
        }
    }

    fn insert_rec(txn: u64, n: usize) -> LogRecord {
        rec(
            txn,
            LogPayload::InsertRecord {
                slot: 0,
                bytes: vec![7u8; n],
            },
        )
    }

    #[test]
    fn append_assigns_increasing_lsns_and_reads_back() {
        let log = LogManager::new(LogConfig::default());
        let a = log.append(&insert_rec(1, 10));
        let b = log.append(&insert_rec(1, 20));
        let c = log.append(&rec(
            1,
            LogPayload::Commit {
                at: Timestamp::from_secs(1),
            },
        ));
        assert!(a < b && b < c);
        assert_eq!(a, Lsn::FIRST);
        let back = log.get_record(b).unwrap();
        assert_eq!(back.lsn, b);
        match back.payload {
            LogPayload::InsertRecord { ref bytes, .. } => assert_eq!(bytes.len(), 20),
            ref other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn record_ref_headers_match_owned_decode() {
        let log = LogManager::new(LogConfig::default());
        let mut lsns = Vec::new();
        for i in 0..300 {
            lsns.push(log.append(&insert_rec(i, 3000)));
        }
        for &l in &lsns {
            let owned = log.get_record(l).unwrap();
            let r = log.get_record_ref(l).unwrap();
            assert_eq!(r.header().unwrap(), owned.header());
            let (_, view) = r.view().unwrap();
            assert_eq!(view.to_owned_payload().unwrap(), owned.payload);
        }
    }

    #[test]
    fn flush_accounts_sequential_bytes() {
        let log = LogManager::new(LogConfig::default());
        let a = log.append(&insert_rec(1, 100));
        assert!(log.flushed_lsn() <= a);
        log.flush_to(a);
        assert_eq!(log.flushed_lsn(), log.tail_lsn());
        let s = log.io_stats().snapshot();
        assert!(s.log_bytes_written > 100);
        // idempotent
        log.flush_to(a);
        assert_eq!(
            log.io_stats().snapshot().log_bytes_written,
            s.log_bytes_written
        );
    }

    #[test]
    fn scan_visits_records_in_order_and_respects_bounds() {
        let log = LogManager::new(LogConfig::default());
        let mut lsns = Vec::new();
        for i in 0..10 {
            lsns.push(log.append(&insert_rec(i, 8)));
        }
        let mut seen = Vec::new();
        log.scan(lsns[2], lsns[7], |r| {
            seen.push(r.lsn);
            Ok(true)
        })
        .unwrap();
        assert_eq!(seen, lsns[2..7].to_vec());
        // early stop
        let mut count = 0;
        log.scan(Lsn::FIRST, Lsn::MAX, |_| {
            count += 1;
            Ok(count < 3)
        })
        .unwrap();
        assert_eq!(count, 3);
        assert!(log.io_stats().snapshot().log_bytes_scanned > 0);
    }

    #[test]
    fn scan_views_sees_the_same_stream_as_scan() {
        let log = LogManager::new(LogConfig::default());
        for i in 0..50 {
            log.append(&insert_rec(i, 64));
            if i % 7 == 0 {
                log.append(&rec(
                    i,
                    LogPayload::Commit {
                        at: Timestamp::from_secs(i),
                    },
                ));
            }
        }
        let mut owned = Vec::new();
        log.scan(Lsn::FIRST, Lsn::MAX, |r| {
            owned.push((r.lsn, r.txn, r.payload.kind()));
            Ok(true)
        })
        .unwrap();
        let mut viewed = Vec::new();
        log.scan_views(Lsn::FIRST, Lsn::MAX, |h, v| {
            assert_eq!(h.kind, v.kind());
            viewed.push((h.lsn, h.txn, h.kind));
            Ok(true)
        })
        .unwrap();
        assert_eq!(owned, viewed);
    }

    #[test]
    fn segments_span_boundaries() {
        let log = LogManager::new(LogConfig::default());
        // Write > 2 MiB of records so several segments exist, with one record
        // likely straddling a boundary.
        let mut lsns = Vec::new();
        for i in 0..500 {
            lsns.push(log.append(&insert_rec(i, 5000)));
        }
        for &l in &lsns {
            let r = log.get_record(l).unwrap();
            assert_eq!(r.lsn, l);
        }
        assert!(log.total_bytes() > 2 * SEGMENT_BYTES);
    }

    #[test]
    fn truncation_drops_old_records() {
        let log = LogManager::new(LogConfig::default());
        let mut lsns = Vec::new();
        for i in 0..600 {
            let l = log.append(&insert_rec(i, 5000));
            log.append(&rec(
                i,
                LogPayload::Commit {
                    at: Timestamp::from_secs(i),
                },
            ));
            lsns.push(l);
        }
        log.flush_to(log.tail_lsn());
        let mid = lsns[300];
        let new_trunc = log.truncate_before(mid);
        assert!(new_trunc <= mid);
        assert!(new_trunc > Lsn::FIRST);
        assert!(matches!(
            log.get_record(lsns[0]),
            Err(Error::LogTruncated(_))
        ));
        assert!(log.get_record(lsns[400]).is_ok());
        assert!(log.retained_bytes() < log.total_bytes());
        // earliest retained time reflects truncation
        let t = log.earliest_retained_time().unwrap();
        assert!(t > Timestamp::ZERO);
    }

    #[test]
    fn truncation_never_passes_unflushed_tail() {
        let log = LogManager::new(LogConfig::default());
        for i in 0..600 {
            log.append(&insert_rec(i, 5000));
        }
        // nothing flushed: truncate_before must not remove anything
        let t = log.truncate_before(log.tail_lsn());
        assert_eq!(t, Lsn::FIRST);
    }

    #[test]
    fn checkpoint_directory() {
        let log = LogManager::new(LogConfig::default());
        log.append(&insert_rec(1, 10));
        let b1 = log.append(&rec(
            0,
            LogPayload::CheckpointBegin {
                at: Timestamp::from_secs(5),
            },
        ));
        let e1 = log.append(&rec(
            0,
            LogPayload::CheckpointEnd(CheckpointBody {
                at: Timestamp::from_secs(5),
                begin_lsn: b1,
                att: vec![],
                dpt: vec![],
            }),
        ));
        log.append(&insert_rec(1, 10));
        let b2 = log.append(&rec(
            0,
            LogPayload::CheckpointBegin {
                at: Timestamp::from_secs(9),
            },
        ));
        let e2 = log.append(&rec(
            0,
            LogPayload::CheckpointEnd(CheckpointBody {
                at: Timestamp::from_secs(9),
                begin_lsn: b2,
                att: vec![],
                dpt: vec![],
            }),
        ));
        assert_eq!(log.checkpoints().len(), 2);
        assert_eq!(log.checkpoint_before(e2).unwrap().end_lsn, e2);
        assert_eq!(log.checkpoint_before(Lsn(e2.0 - 1)).unwrap().end_lsn, e1);
        assert_eq!(
            log.checkpoint_before_time(Timestamp::from_secs(7))
                .unwrap()
                .end_lsn,
            e1
        );
        assert!(log
            .checkpoint_before_time(Timestamp::from_secs(1))
            .is_none());
    }

    #[test]
    fn cache_model_hits_tail_and_misses_cold_history() {
        let log = LogManager::new(LogConfig {
            hot_tail_bytes: 1024,
            cache_blocks: 2,
            ..LogConfig::default()
        });
        let mut lsns = Vec::new();
        for i in 0..2000 {
            lsns.push(log.append(&insert_rec(i, 900)));
        }
        // tail read: hit
        let s0 = log.io_stats().snapshot();
        log.get_record(*lsns.last().unwrap()).unwrap();
        let s1 = log.io_stats().snapshot();
        assert_eq!(s1.log_read_ios, s0.log_read_ios);
        assert_eq!(s1.log_cache_hits, s0.log_cache_hits + 1);
        // cold read: miss, then hit on re-read
        log.get_record(lsns[0]).unwrap();
        let s2 = log.io_stats().snapshot();
        assert_eq!(s2.log_read_ios, s1.log_read_ios + 1);
        log.get_record(lsns[0]).unwrap();
        let s3 = log.io_stats().snapshot();
        assert_eq!(s3.log_read_ios, s2.log_read_ios);
        // far-apart cold reads evict each other (cache_blocks = 2)
        log.get_record(lsns[500]).unwrap();
        log.get_record(lsns[1000]).unwrap();
        log.get_record(lsns[0]).unwrap(); // evicted by now
        let s4 = log.io_stats().snapshot();
        assert!(s4.log_read_ios >= s3.log_read_ios + 2);
    }

    #[test]
    fn get_past_tail_is_error() {
        let log = LogManager::new(LogConfig::default());
        log.append(&insert_rec(1, 10));
        assert!(log.get_record(log.tail_lsn()).is_err());
        assert!(log.get_record(Lsn(999_999)).is_err());
    }

    #[test]
    fn flush_charges_only_requested_frames() {
        // Regression for the over-flush/over-charge bug: flush_to(lsn) used
        // to ignore its argument and flush (and charge) the entire tail, so
        // one committer was billed for other transactions' unflushed bytes.
        let log = LogManager::new(LogConfig::default());
        let a = log.append(&insert_rec(1, 100));
        let b = log.append(&insert_rec(2, 200));
        let frame_a = log.get_record_ref(a).unwrap().frame_len();
        let frame_b = log.get_record_ref(b).unwrap().frame_len();
        let s0 = log.io_stats().snapshot();

        // Committer 1 forces only its own record…
        log.flush_to(a);
        let s1 = log.io_stats().snapshot();
        assert_eq!(s1.log_bytes_written - s0.log_bytes_written, frame_a);
        assert_eq!(log.flushed_lsn(), b, "flush stops at a's frame end");
        assert!(log.flushed_lsn() < log.tail_lsn(), "b must stay unflushed");

        // …and committer 2 is charged exactly its own frame afterwards.
        log.flush_to(b);
        let s2 = log.io_stats().snapshot();
        assert_eq!(s2.log_bytes_written - s1.log_bytes_written, frame_b);
        assert_eq!(log.flushed_lsn(), log.tail_lsn());
        assert_eq!(s2.log_flushes - s0.log_flushes, 2);

        // Idempotent: re-flushing charges nothing and performs no flush.
        log.flush_to(a);
        log.flush_to(b);
        let s3 = log.io_stats().snapshot();
        assert_eq!(s3.log_bytes_written, s2.log_bytes_written);
        assert_eq!(s3.log_flushes, s2.log_flushes);
    }

    #[test]
    fn flush_up_to_excludes_the_boundary_record() {
        let log = LogManager::new(LogConfig::default());
        let a = log.append(&insert_rec(1, 100));
        let b = log.append(&insert_rec(1, 100));
        // Flush strictly before b: a is durable, b is not.
        log.flush_up_to(b);
        assert_eq!(log.flushed_lsn(), b);
        assert!(log.flushed_lsn() < log.tail_lsn());
        let _ = a;
    }

    #[test]
    fn append_batch_chains_and_writes_back_lsns() {
        let log = LogManager::new(LogConfig::default());
        let head = log.append(&insert_rec(7, 16));
        let mut batch: Vec<LogRecord> = (0..5).map(|_| insert_rec(7, 32)).collect();
        batch[0].prev_lsn = head;
        batch[0].prev_page_lsn = Lsn(42);
        let range = log.append_batch(&mut batch);
        assert_eq!(range.start, batch[0].lsn);
        assert_eq!(range.end, log.tail_lsn());
        for (i, rec) in batch.iter().enumerate() {
            let back = log.get_record(rec.lsn).unwrap();
            if i == 0 {
                // The batch head keeps its caller-provided linkage…
                assert_eq!(back.prev_lsn, head);
                assert_eq!(back.prev_page_lsn, Lsn(42));
            } else {
                // …and the rest are rewired through the batch, both the
                // per-transaction and the per-page chain.
                assert_eq!(back.prev_lsn, batch[i - 1].lsn);
                assert_eq!(back.prev_page_lsn, batch[i - 1].lsn);
            }
        }
        // A batch of differently-keyed records is left unchained.
        let mut mixed = vec![insert_rec(1, 8), insert_rec(2, 8)];
        log.append_batch(&mut mixed);
        let back = log.get_record(mixed[1].lsn).unwrap();
        assert_eq!(back.prev_lsn, Lsn::NULL);
    }

    #[test]
    fn append_stamped_clamps_a_backward_clock() {
        let log = LogManager::new(LogConfig::default());
        let mut r1 = rec(
            1,
            LogPayload::Commit {
                at: Timestamp::ZERO,
            },
        );
        log.append_stamped(&mut r1, &|| Timestamp::from_secs(10));
        // A clock reading behind the last stamp is clamped forward, so
        // stamps stay monotone in LSN order.
        let mut r2 = rec(
            2,
            LogPayload::Commit {
                at: Timestamp::ZERO,
            },
        );
        let range2 = log.append_stamped(&mut r2, &|| Timestamp::from_secs(5));
        assert_eq!(range2.end, log.tail_lsn());
        match log.get_record(range2.start).unwrap().payload {
            LogPayload::Commit { at } => assert_eq!(at, Timestamp::from_secs(10)),
            ref other => panic!("unexpected {other:?}"),
        }
        match r2.payload {
            LogPayload::Commit { at } => assert_eq!(at, Timestamp::from_secs(10)),
            ref other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn record_ref_survives_truncation() {
        let log = LogManager::new(LogConfig::default());
        let mut lsns = Vec::new();
        for i in 0..600 {
            lsns.push(log.append(&insert_rec(i, 5000)));
        }
        log.flush_to(log.tail_lsn());
        // Hold a zero-copy ref into early history, then truncate past it.
        let held = log.get_record_ref(lsns[10]).unwrap();
        let expect = held.decode().unwrap();
        log.truncate_before(lsns[400]);
        assert!(log.truncation_point() > lsns[10]);
        // New reads fail; the held snapshot still decodes the same record.
        assert!(matches!(
            log.get_record(lsns[10]),
            Err(Error::LogTruncated(_))
        ));
        assert_eq!(held.decode().unwrap(), expect);
        assert_eq!(held.header().unwrap(), expect.header());
    }

    fn end_checkpoint(log: &LogManager, at_secs: u64) -> Lsn {
        let b = log.append(&rec(
            0,
            LogPayload::CheckpointBegin {
                at: Timestamp::from_secs(at_secs),
            },
        ));
        log.append(&rec(
            0,
            LogPayload::CheckpointEnd(CheckpointBody {
                at: Timestamp::from_secs(at_secs),
                begin_lsn: b,
                att: vec![],
                dpt: vec![],
            }),
        ))
    }

    #[test]
    fn crc_framing_detects_bit_flip() {
        let log = LogManager::new(LogConfig::default());
        let a = log.append(&insert_rec(1, 64));
        let b = log.append(&insert_rec(1, 64));
        log.flush_to(log.tail_lsn());
        assert!(log.get_record(b).is_ok());
        // Flip one bit in b's body; the frame CRC must catch it.
        assert!(log.corrupt_byte_at(b.0 + FRAME_HEADER as u64 + 3, 0x10));
        let err = log.get_record(b).unwrap_err();
        assert_eq!(err.corruption_kind(), Some(CorruptionKind::LogBlock));
        assert!(err.to_string().contains("crc"), "{err}");
        assert!(log.io_stats().snapshot().corruptions_detected >= 1);
        // Undamaged records stay readable.
        assert!(log.get_record(a).is_ok());
        // Out-of-range and no-op corruption requests are rejected.
        assert!(!log.corrupt_byte_at(log.tail_lsn().0 + 100, 0x10));
        assert!(!log.corrupt_byte_at(a.0, 0));
    }

    #[test]
    fn discard_corrupt_tail_cuts_at_first_bad_frame() {
        let log = LogManager::new(LogConfig::default());
        let mut lsns = Vec::new();
        for i in 0..20 {
            lsns.push(log.append(&insert_rec(i, 200)));
        }
        log.flush_to(log.tail_lsn());
        assert_eq!(log.discard_corrupt_tail(), None, "clean log: no cut");
        // Damage record 12's body: the durable prefix is records 0..12.
        assert!(log.corrupt_byte_at(lsns[12].0 + FRAME_HEADER as u64 + 1, 0x80));
        assert_eq!(log.discard_corrupt_tail(), Some(lsns[12]));
        assert_eq!(log.tail_lsn(), lsns[12]);
        assert_eq!(log.flushed_lsn(), lsns[12], "durable horizon pulled back");
        for &l in &lsns[..12] {
            assert!(log.get_record(l).is_ok(), "clean prefix must survive");
        }
        let mut seen = 0;
        log.scan(lsns[0], Lsn::MAX, |_| {
            seen += 1;
            Ok(true)
        })
        .unwrap();
        assert_eq!(seen, 12, "scan sees exactly the clean prefix");
        // The log remains appendable after the cut.
        let next = log.append(&insert_rec(99, 10));
        assert_eq!(next, lsns[12]);
        log.flush_to(log.tail_lsn());
        assert!(log.get_record(next).is_ok());
        // Idempotent: the repaired log is clean again.
        assert_eq!(log.discard_corrupt_tail(), None);
    }

    #[test]
    fn discard_corrupt_tail_cuts_inside_sealed_segment() {
        let log = LogManager::new(LogConfig::default());
        let mut lsns = Vec::new();
        // Large records force several sealed segments.
        for i in 0..600 {
            lsns.push(log.append(&insert_rec(i, 5000)));
        }
        log.flush_to(log.tail_lsn());
        assert!(log.load_sealed().segs.len() > 1, "need sealed history");
        assert!(
            lsns[50].0 < log.load_sealed().sealed_end,
            "target is sealed"
        );
        // Live readers holding the old index keep the clean bytes.
        let held = log.get_record_ref(lsns[50]).unwrap();
        assert!(log.corrupt_byte_at(lsns[50].0 + FRAME_HEADER as u64, 0x01));
        assert_eq!(log.discard_corrupt_tail(), Some(lsns[50]));
        assert_eq!(log.tail_lsn(), lsns[50]);
        assert!(log.get_record(lsns[49]).is_ok());
        assert!(held.decode().is_ok(), "sealed bytes are never mutated");
    }

    #[test]
    fn anchor_fallback_uses_older_slot_when_newest_corrupt() {
        let log = LogManager::new(LogConfig::default());
        log.append(&insert_rec(1, 10));
        let e1 = end_checkpoint(&log, 5);
        log.append(&insert_rec(1, 10));
        let e2 = end_checkpoint(&log, 9);
        log.append(&insert_rec(1, 10));
        log.flush_to(log.tail_lsn());
        // Crash with both anchors intact: both checkpoints survive.
        log.discard_unflushed();
        let cps = log.checkpoints();
        assert_eq!(
            cps.iter().map(|c| c.end_lsn).collect::<Vec<_>>(),
            vec![e1, e2]
        );
        // Corrupt the newest anchor: recovery degrades to the older one.
        let newest = log.newest_anchor_slot().unwrap();
        assert!(log.corrupt_anchor_slot(newest));
        let before = log.io_stats().snapshot().corruptions_detected;
        log.discard_unflushed();
        let cps = log.checkpoints();
        assert_eq!(
            cps.iter().map(|c| c.end_lsn).collect::<Vec<_>>(),
            vec![e1],
            "older anchor must carry recovery"
        );
        assert_eq!(log.io_stats().snapshot().corruptions_detected, before + 1);
        // Corrupt the other slot too: the directory degrades to empty
        // (analysis falls back to a scan from the truncation point).
        assert!(log.corrupt_anchor_slot(1 - newest));
        log.discard_unflushed();
        assert!(log.checkpoints().is_empty());
    }

    #[test]
    fn flush_retries_transient_faults_and_counts_them() {
        let log = LogManager::new(LogConfig::default());
        let a = log.append(&insert_rec(1, 100));
        log.set_flush_faults(3);
        log.flush_to(a);
        assert_eq!(log.flushed_lsn(), log.tail_lsn(), "flush must succeed");
        assert_eq!(log.io_stats().snapshot().io_retries, 3);
    }

    #[test]
    fn followers_never_wake_before_durability_across_retries() {
        // Regression for the leader/follower coalescer: a leader whose
        // physical flush fails transiently and succeeds on retry must keep
        // followers parked for the whole retry sequence — a follower that
        // returns from flush_to must always observe its bytes durable.
        let log = Arc::new(LogManager::new(LogConfig {
            flush_delay_us: 50,
            ..LogConfig::default()
        }));
        for round in 0..20u64 {
            let target = log.append(&insert_rec(round, 512));
            log.set_flush_faults(4);
            let followers: Vec<_> = (0..4)
                .map(|_| {
                    let log = log.clone();
                    std::thread::spawn(move || {
                        log.flush_to(target);
                        let flushed = log.flushed_lsn();
                        assert!(
                            flushed > target,
                            "follower woke before durability: flushed {flushed} <= target {target}"
                        );
                    })
                })
                .collect();
            log.flush_to(target);
            assert!(log.flushed_lsn() > target);
            for f in followers {
                f.join().unwrap();
            }
        }
        assert!(log.io_stats().snapshot().io_retries > 0, "faults consumed");
    }
}
