//! The ARIES-style write-ahead log, with the paper's extensions.
//!
//! The transaction log already contains most of the information needed to
//! produce prior versions of data (§4); this crate adds the paper's §4.2
//! extensions so that *page-oriented physical undo* works from the current
//! state arbitrarily far back:
//!
//! 1. every page modification carries a `prev_page_lsn`, back-linking the
//!    complete modification history of each page (§4.1-B),
//! 2. **preformat** records splice the chain across page deallocation /
//!    re-allocation and preserve the previous page image (§4.2-1, Fig. 2),
//! 3. **compensation log records carry undo information** (§4.2-2) — in this
//!    implementation every CLR is an ordinary page modification with full
//!    before/after data, plus the `undo_next` pointer,
//! 4. B-Tree structure modifications log the *deleted* rows with their full
//!    undo information (§4.2-3),
//! 5. optional **full page images** every Nth modification, chained via
//!    `prev_fpi_lsn`, let undo skip over log regions (§6.1).
//!
//! [`LogManager`] provides append/flush/random-read/scan with I/O accounting
//! (random log reads during undo are the paper's Fig. 11 metric), a
//! checkpoint directory, retention-based truncation (§4.3) and the
//! wall-clock → SplitLSN search used by as-of snapshot creation (§5.1).
//! The write path is group-committed: batched appends
//! ([`LogManager::append_batch`]), clock stamping under the writer mutex
//! ([`LogManager::append_stamped`]) and a leader/follower flush coalescer
//! with record-boundary-precise accounting (see the [`logmgr`] module docs
//! for the commit-path diagram).

pub mod logmgr;
pub mod record;
pub mod split;

pub use logmgr::{CheckpointInfo, LogConfig, LogManager, RecordRef};
pub use record::{
    CheckpointBody, DptEntry, LogPayload, LogPayloadView, LogRecord, LogRecordHeader, PayloadKind,
    RecordFlags, TxnTableEntry, RECORD_HEADER_BYTES, REC_FLAG_CLR, REC_FLAG_HEAP, REC_FLAG_SYSTEM,
};
pub use split::{find_split_lsn, find_split_lsn_deep};
