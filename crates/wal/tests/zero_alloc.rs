//! Proof that the header-only chain-walk path allocates nothing per record.
//!
//! A counting global allocator wraps the system allocator; after warming the
//! thread-local segment snapshot and the cache model, a backward chain walk
//! over sealed history (header + borrowed payload view + undo application
//! against a page) must perform **zero** heap allocations.

use rewind_common::{Lsn, ObjectId, PageId, TxnId};
use rewind_pagestore::{Page, PageType};
use rewind_wal::{LogConfig, LogManager, LogPayload, LogPayloadView, LogRecord};
use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

struct CountingAllocator;

static ALLOCATIONS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAllocator {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        System.alloc(layout)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        System.realloc(ptr, layout, new_size)
    }
}

#[global_allocator]
static ALLOCATOR: CountingAllocator = CountingAllocator;

fn allocations() -> u64 {
    ALLOCATIONS.load(Ordering::Relaxed)
}

#[test]
fn header_only_chain_walk_allocates_nothing() {
    let pid = PageId(5);
    let log = LogManager::new(LogConfig::default());
    let mut page = Page::formatted(pid, ObjectId(1), PageType::BTreeLeaf);
    page.insert_record(0, b"seed-row").unwrap();

    // Build one page's chain: enough updates to seal several segments so
    // the walk below runs on the lock-free sealed path.
    let mut lsns = Vec::new();
    for i in 0..4_000u32 {
        let payload = LogPayload::UpdateRecord {
            slot: 0,
            old: page.record(0).unwrap().to_vec(),
            new: format!("value-{i:04}-{}", "x".repeat(700)).into_bytes(),
        };
        let rec = LogRecord {
            lsn: Lsn::NULL,
            txn: TxnId(1),
            prev_lsn: Lsn::NULL,
            page: pid,
            prev_page_lsn: page.page_lsn(),
            object: ObjectId(1),
            undo_next: Lsn::NULL,
            flags: 0,
            payload: payload.clone(),
        };
        let lsn = log.append(&rec);
        payload.redo(&mut page, pid, lsn).unwrap();
        lsns.push(lsn);
    }

    // Walk only sealed history (stay well below the tail segment), long
    // enough to be meaningful: ~2000 records.
    let walk_from = lsns[2000];
    let walk_records = 1800u64;

    let run_walk = |p: &mut Page| {
        // Rewind from a known state at walk_from: start the chain there.
        let mut cur = walk_from;
        let mut undone = 0u64;
        while cur.is_valid() && undone < walk_records {
            let rec = log.get_record_ref(cur).unwrap();
            let (header, view) = rec.view().unwrap();
            assert_eq!(header.page, pid);
            assert!(matches!(view, LogPayloadView::UpdateRecord { .. }));
            view.undo(p, pid).unwrap();
            cur = header.prev_page_lsn;
            undone += 1;
        }
        undone
    };

    // Warm pass: populates the thread-local segment snapshot and the cache
    // model's block map (both one-time costs, exactly like a real cache).
    let mut scratch_page = page.clone();
    scratch_page.set_page_lsn(walk_from);
    // The page record must match the state at walk_from for undo to apply;
    // reconstruct it by replaying from the log's own view of walk_from.
    let rec = log.get_record(walk_from).unwrap();
    match rec.payload {
        LogPayload::UpdateRecord { ref new, .. } => {
            scratch_page.update_record(0, new).unwrap();
        }
        ref other => panic!("unexpected {other:?}"),
    }
    let warm_state = scratch_page.clone();
    assert_eq!(run_walk(&mut scratch_page), walk_records);

    // Measured pass: zero allocations per record — zero allocations at all.
    let mut measured_page = warm_state;
    let before = allocations();
    let undone = run_walk(&mut measured_page);
    let after = allocations();
    assert_eq!(undone, walk_records);
    assert_eq!(
        after - before,
        0,
        "header-only chain walk must not allocate (got {} allocations over {} records)",
        after - before,
        undone
    );
    assert_eq!(
        measured_page.record(0).unwrap(),
        scratch_page.record(0).unwrap()
    );
}

#[test]
fn header_reads_after_warmup_allocate_nothing() {
    let log = LogManager::new(LogConfig::default());
    let mut lsns = Vec::new();
    for i in 0..3_000u64 {
        lsns.push(log.append(&LogRecord {
            lsn: Lsn::NULL,
            txn: TxnId(i),
            prev_lsn: Lsn::NULL,
            page: PageId(i % 64),
            prev_page_lsn: Lsn::NULL,
            object: ObjectId(1),
            undo_next: Lsn::NULL,
            flags: 0,
            payload: LogPayload::InsertRecord {
                slot: 0,
                bytes: vec![7u8; 900],
            },
        }));
    }
    // Warm: snapshot + cache blocks.
    for &l in &lsns[..2000] {
        log.get_record_header(l).unwrap();
    }
    let before = allocations();
    for &l in &lsns[..2000] {
        let h = log.get_record_header(l).unwrap();
        assert_eq!(h.lsn, l);
    }
    assert_eq!(
        allocations() - before,
        0,
        "warm header reads must not allocate"
    );
}
