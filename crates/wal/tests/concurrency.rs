//! Concurrency tests for the lock-free log read path: random readers and
//! scanners racing an appender and a truncator, snapshot isolation of
//! in-flight readers across truncation, and `discard_unflushed` racing
//! `append` (crash-point semantics: everything at or below the flushed LSN
//! survives, nothing after it does).

use parking_lot::Mutex;
use rewind_common::{Error, Lsn, ObjectId, PageId, Timestamp, TxnId};
use rewind_wal::{LogConfig, LogManager, LogPayload, LogRecord};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::thread;

fn payload_rec(txn: u64, marker: u64, n: usize) -> LogRecord {
    let mut bytes = marker.to_le_bytes().to_vec();
    bytes.resize(n, 0x5A);
    LogRecord {
        lsn: Lsn::NULL,
        txn: TxnId(txn),
        prev_lsn: Lsn::NULL,
        page: PageId(marker),
        prev_page_lsn: Lsn::NULL,
        object: ObjectId(1),
        undo_next: Lsn::NULL,
        flags: 0,
        payload: LogPayload::InsertRecord { slot: 0, bytes },
    }
}

fn marker_of(rec: &LogRecord) -> u64 {
    match &rec.payload {
        LogPayload::InsertRecord { bytes, .. } => {
            u64::from_le_bytes(bytes[..8].try_into().unwrap())
        }
        other => panic!("unexpected payload {other:?}"),
    }
}

/// A tiny deterministic xorshift for the reader threads.
struct XorShift(u64);

impl XorShift {
    fn next(&mut self) -> u64 {
        self.0 ^= self.0 << 13;
        self.0 ^= self.0 >> 7;
        self.0 ^= self.0 << 17;
        self.0
    }
}

/// N reader threads doing random `get_record`/`scan` while one writer
/// appends and another thread truncates. Readers must never observe a torn
/// record: every read either decodes to exactly the record that was
/// appended at that LSN (validated by a marker) or fails with
/// `LogTruncated`.
#[test]
fn concurrent_readers_writer_truncator_no_torn_reads() {
    let log = Arc::new(LogManager::new(LogConfig::default()));
    // (lsn, marker) pairs the writer has published.
    let appended: Arc<Mutex<Vec<(Lsn, u64)>>> = Arc::new(Mutex::new(Vec::new()));
    let stop = Arc::new(AtomicBool::new(false));
    let reads_ok = Arc::new(AtomicU64::new(0));
    let reads_truncated = Arc::new(AtomicU64::new(0));

    // Writer: appends ~20 MiB of records, flushing as it goes.
    let writer = {
        let log = log.clone();
        let appended = appended.clone();
        let stop = stop.clone();
        thread::spawn(move || {
            for i in 0..8_000u64 {
                let lsn = log.append(&payload_rec(1, i, 2500));
                if i % 64 == 0 {
                    log.flush_to(lsn);
                }
                appended.lock().push((lsn, i));
            }
            log.flush_to(log.tail_lsn());
            stop.store(true, Ordering::Release);
        })
    };

    // Truncator: advances retention while the writer runs.
    let truncator = {
        let log = log.clone();
        let stop = stop.clone();
        thread::spawn(move || {
            while !stop.load(Ordering::Acquire) {
                let tail = log.tail_lsn();
                // keep roughly the most recent 4 MiB
                log.truncate_before(Lsn(tail.0.saturating_sub(4 << 20).max(Lsn::FIRST.0)));
                thread::yield_now();
            }
        })
    };

    // Readers: random point reads + bounded scans.
    let readers: Vec<_> = (0..4)
        .map(|seed| {
            let log = log.clone();
            let appended = appended.clone();
            let stop = stop.clone();
            let reads_ok = reads_ok.clone();
            let reads_truncated = reads_truncated.clone();
            thread::spawn(move || {
                let mut rng = XorShift(0x9E3779B97F4A7C15 ^ (seed as u64 + 1));
                while !stop.load(Ordering::Acquire) {
                    let pick = {
                        let list = appended.lock();
                        if list.is_empty() {
                            continue;
                        }
                        list[(rng.next() as usize) % list.len()]
                    };
                    let (lsn, marker) = pick;
                    if rng.next().is_multiple_of(8) {
                        // bounded scan from the pick (validates frame chaining)
                        let mut n = 0;
                        let res = log.scan(lsn, Lsn::MAX, |rec| {
                            assert!(rec.lsn >= lsn, "scan went backwards");
                            n += 1;
                            Ok(n < 16)
                        });
                        match res {
                            Ok(_) => reads_ok.fetch_add(1, Ordering::Relaxed),
                            Err(Error::LogTruncated(_)) => {
                                reads_truncated.fetch_add(1, Ordering::Relaxed)
                            }
                            Err(e) => panic!("scan failed: {e}"),
                        };
                    } else {
                        match log.get_record(lsn) {
                            Ok(rec) => {
                                assert_eq!(rec.lsn, lsn);
                                assert_eq!(marker_of(&rec), marker, "torn read at {lsn}");
                                reads_ok.fetch_add(1, Ordering::Relaxed);
                            }
                            Err(Error::LogTruncated(_)) => {
                                reads_truncated.fetch_add(1, Ordering::Relaxed);
                            }
                            Err(e) => panic!("get_record({lsn}) failed: {e}"),
                        }
                    }
                }
            })
        })
        .collect();

    writer.join().unwrap();
    truncator.join().unwrap();
    for r in readers {
        r.join().unwrap();
    }
    assert!(
        reads_ok.load(Ordering::Relaxed) > 0,
        "readers must complete successful reads under contention"
    );
}

/// `truncate_before` never invalidates an in-flight reader holding a
/// segment snapshot: a `RecordRef` taken before truncation still decodes
/// the exact record afterwards, even while new reads fail, and even racing
/// further appends and truncations.
#[test]
fn truncation_does_not_invalidate_inflight_readers() {
    let log = Arc::new(LogManager::new(LogConfig::default()));
    let mut lsns = Vec::new();
    for i in 0..2_000u64 {
        lsns.push(log.append(&payload_rec(1, i, 2500)));
    }
    log.flush_to(log.tail_lsn());

    // Take refs across early history.
    let held: Vec<_> = (0..100)
        .map(|i| {
            let lsn = lsns[i * 10];
            (lsn, i as u64 * 10, log.get_record_ref(lsn).unwrap())
        })
        .collect();

    // Truncate everything below the last quarter while another thread
    // appends more — both publications race the held readers.
    let appender = {
        let log = log.clone();
        thread::spawn(move || {
            for i in 0..2_000u64 {
                log.append(&payload_rec(2, 100_000 + i, 2500));
            }
        })
    };
    log.truncate_before(lsns[1500]);
    appender.join().unwrap();
    assert!(log.truncation_point() > lsns[999]);

    for (lsn, marker, rec_ref) in &held {
        // fresh reads fail…
        assert!(matches!(log.get_record(*lsn), Err(Error::LogTruncated(_))));
        // …the held snapshot still reads exactly the old record
        let rec = rec_ref.decode().unwrap();
        assert_eq!(rec.lsn, *lsn);
        assert_eq!(marker_of(&rec), *marker);
        let header = rec_ref.header().unwrap();
        assert_eq!(header.page, PageId(*marker));
    }
}

/// `discard_unflushed` racing `append`: whatever interleaving occurs, the
/// tail always lands exactly on the flushed LSN after a discard, every
/// record below the final crash point carries the bytes of the *last*
/// append at that LSN (discarded LSNs are reused, exactly like a real
/// volatile tail after a crash), and the surviving stream decodes cleanly.
///
/// Records are constant-size so LSN reuse after a discard realigns exactly
/// — which is what makes "last append at this LSN" well-defined.
#[test]
fn discard_unflushed_racing_append_keeps_flushed_prefix() {
    let log = Arc::new(LogManager::new(LogConfig::default()));
    let stop = Arc::new(AtomicBool::new(false));

    let writer = {
        let log = log.clone();
        let stop = stop.clone();
        thread::spawn(move || {
            // lsn -> marker of the last record appended there (LSNs are
            // reused when a discard cuts the unflushed tail back).
            let mut last_write: std::collections::HashMap<u64, u64> =
                std::collections::HashMap::new();
            for i in 0..6_000u64 {
                let lsn = log.append(&payload_rec(1, i, 600));
                last_write.insert(lsn.0, i);
                if i % 37 == 0 {
                    log.flush_to(lsn);
                }
            }
            // Deliberately do not flush the final stretch: the last discard
            // below must cut it away.
            stop.store(true, Ordering::Release);
            last_write
        })
    };

    let chaos = {
        let log = log.clone();
        let stop = stop.clone();
        thread::spawn(move || {
            let mut n = 0u64;
            while !stop.load(Ordering::Acquire) {
                log.discard_unflushed();
                n += 1;
                if n.is_multiple_of(16) {
                    thread::yield_now();
                }
            }
            n
        })
    };

    let last_write = writer.join().unwrap();
    let discards = chaos.join().unwrap();
    assert!(
        discards > 0,
        "chaos thread must have discarded at least once"
    );

    // Crash-point semantics: after the final discard the tail is exactly
    // the flushed LSN.
    log.discard_unflushed();
    let crash_point = log.flushed_lsn();
    assert_eq!(log.tail_lsn(), crash_point);

    // Everything below the crash point survives with the last-appended
    // bytes; everything at or after it is gone.
    // Flush targets are always record boundaries, so any recorded LSN below
    // the crash point is a whole surviving record.
    let mut survivors = 0u64;
    for (&lsn, &marker) in &last_write {
        if lsn < crash_point.0 {
            let rec = log
                .get_record(Lsn(lsn))
                .unwrap_or_else(|e| panic!("flushed record at {lsn} lost: {e}"));
            assert_eq!(marker_of(&rec), marker, "wrong record at {lsn}");
            survivors += 1;
        }
    }
    assert!(survivors > 0, "some flushed records must survive");
    assert!(
        log.get_record(crash_point).is_err(),
        "nothing readable at/after the crash point"
    );

    // The surviving stream decodes cleanly end to end (no torn frames).
    let mut last = Lsn::NULL;
    let end = log
        .scan(log.truncation_point(), Lsn::MAX, |rec| {
            assert!(rec.lsn > last);
            last = rec.lsn;
            Ok(true)
        })
        .unwrap();
    assert_eq!(end, log.tail_lsn());
}

/// Deterministic crash-point check: the boundary between flushed and
/// unflushed is exact, and the log continues cleanly from the cut.
#[test]
fn discard_unflushed_boundary_is_exact_and_log_continues() {
    let log = LogManager::new(LogConfig::default());
    let a = log.append(&payload_rec(1, 1, 64));
    let b = log.append(&payload_rec(1, 2, 64));
    log.flush_to(b);
    let flushed = log.flushed_lsn();
    let c = log.append(&payload_rec(1, 3, 64));
    let d = log.append(&payload_rec(1, 4, 64));
    log.discard_unflushed();

    assert_eq!(log.tail_lsn(), flushed);
    assert_eq!(marker_of(&log.get_record(a).unwrap()), 1);
    assert_eq!(marker_of(&log.get_record(b).unwrap()), 2);
    assert!(log.get_record(c).is_err());
    assert!(log.get_record(d).is_err());

    // New appends continue exactly at the crash point.
    let e = log.append(&payload_rec(2, 5, 64));
    assert_eq!(e, flushed);
    assert_eq!(marker_of(&log.get_record(e).unwrap()), 5);
    log.flush_to(e);

    // A commit record makes the time index usable again after the cut.
    log.append(&LogRecord {
        payload: LogPayload::Commit {
            at: Timestamp::from_secs(9),
        },
        ..payload_rec(2, 0, 8)
    });
    assert!(log.tail_lsn() > e);
}
