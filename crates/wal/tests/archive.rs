//! Log-archive behaviour: retention-bound reads vs. deep (archive-aware)
//! reads, and crash-tail discard interplay.

use rewind_common::{Error, Lsn, ObjectId, PageId, Timestamp, TxnId};
use rewind_wal::{
    find_split_lsn, find_split_lsn_deep, LogConfig, LogManager, LogPayload, LogRecord,
};

fn rec(txn: u64, payload: LogPayload) -> LogRecord {
    LogRecord {
        lsn: Lsn::NULL,
        txn: TxnId(txn),
        prev_lsn: Lsn::NULL,
        page: PageId(1),
        prev_page_lsn: Lsn::NULL,
        object: ObjectId(1),
        undo_next: Lsn::NULL,
        flags: 0,
        payload,
    }
}

fn build(archive: bool) -> (LogManager, Vec<Lsn>) {
    let log = LogManager::new(LogConfig {
        archive_on_truncate: archive,
        ..LogConfig::default()
    });
    let mut commits = Vec::new();
    for i in 1..=800u64 {
        log.append(&rec(
            i,
            LogPayload::InsertRecord {
                slot: 0,
                bytes: vec![7u8; 2000],
            },
        ));
        commits.push(log.append(&rec(
            i,
            LogPayload::Commit {
                at: Timestamp::from_secs(i),
            },
        )));
    }
    log.flush_to(log.tail_lsn());
    (log, commits)
}

#[test]
fn truncation_without_archive_discards_history() {
    let (log, commits) = build(false);
    log.truncate_before(commits[500]);
    assert!(log.truncation_point() > Lsn::FIRST);
    assert_eq!(log.archived_bytes(), 0);
    assert!(matches!(
        log.get_record(commits[10]),
        Err(Error::LogTruncated(_))
    ));
    // deep reads cannot help: the bytes are gone
    assert!(log.get_record_deep(commits[10]).is_err());
}

#[test]
fn archive_keeps_history_readable_deeply_but_not_shallowly() {
    let (log, commits) = build(true);
    log.truncate_before(commits[500]);
    let trunc = log.truncation_point();
    assert!(trunc > Lsn::FIRST);
    assert!(log.archived_bytes() > 0);
    assert_eq!(log.earliest_available_lsn(), Lsn::FIRST);

    // shallow (retention-bound) read still refuses
    assert!(matches!(
        log.get_record(commits[10]),
        Err(Error::LogTruncated(_))
    ));
    // deep read succeeds
    let r = log.get_record_deep(commits[10]).unwrap();
    assert_eq!(r.lsn, commits[10]);

    // deep scan crosses the archive/live boundary seamlessly
    let mut seen = 0u64;
    log.scan_deep(Lsn::FIRST, Lsn::MAX, |_| {
        seen += 1;
        Ok(true)
    })
    .unwrap();
    assert_eq!(seen, 1600, "all records visible deeply");

    // shallow scan from the truncation point sees only the retained suffix
    let mut shallow = 0u64;
    log.scan(trunc, Lsn::MAX, |_| {
        shallow += 1;
        Ok(true)
    })
    .unwrap();
    assert!(shallow < seen);
}

#[test]
fn split_search_is_retention_bound_but_deep_variant_reaches_archive() {
    let (log, commits) = build(true);
    log.truncate_before(commits[500]);
    // the as-of path refuses out-of-retention times
    match find_split_lsn(&log, Timestamp::from_secs(10)) {
        Err(Error::RetentionExceeded { .. }) => {}
        other => panic!("expected RetentionExceeded, got {other:?}"),
    }
    // restore's deep variant finds the archived commit
    let split = find_split_lsn_deep(&log, Timestamp::from_secs(10)).unwrap();
    assert_eq!(split, commits[9]);
    // recent times agree between the two
    let t = Timestamp::from_secs(700);
    assert_eq!(
        find_split_lsn(&log, t).unwrap(),
        find_split_lsn_deep(&log, t).unwrap()
    );
}

#[test]
fn discard_unflushed_drops_only_the_volatile_tail() {
    let log = LogManager::new(LogConfig::default());
    let a = log.append(&rec(
        1,
        LogPayload::InsertRecord {
            slot: 0,
            bytes: vec![1; 100],
        },
    ));
    log.flush_to(a);
    let flushed_tail = log.tail_lsn();
    let b = log.append(&rec(
        1,
        LogPayload::InsertRecord {
            slot: 0,
            bytes: vec![2; 100],
        },
    ));
    assert!(log.get_record(b).is_ok());
    log.discard_unflushed();
    assert_eq!(
        log.tail_lsn(),
        flushed_tail,
        "tail rewinds to the flushed point"
    );
    assert!(log.get_record(a).is_ok());
    assert!(log.get_record(b).is_err());
    // appends continue cleanly after the discard
    let c = log.append(&rec(2, LogPayload::Abort));
    assert_eq!(c, flushed_tail);
    assert_eq!(log.get_record(c).unwrap().payload, LogPayload::Abort);
}
