//! Group-commit and oversized-segment tests: the flush coalescer's
//! durability contract (a follower is never woken before its LSN is
//! durable; `flushed` never exceeds the tail even under racing
//! `discard_unflushed`), flush coalescing under concurrent committers, and
//! the early-seal path for records larger than a segment.

use rewind_common::{Lsn, ObjectId, PageId, TxnId};
use rewind_wal::{LogConfig, LogManager, LogPayload, LogRecord};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread;

/// One in-memory log segment (mirrors `logmgr::SEGMENT_BYTES`).
const SEGMENT_BYTES: usize = 1 << 20;

fn payload_rec(txn: u64, n: usize) -> LogRecord {
    marked_rec(txn, 0, n)
}

/// A record carrying a unique marker in its payload, so a test can tell
/// whether the bytes at an LSN are still *its* record after crash chaos.
fn marked_rec(txn: u64, marker: u64, n: usize) -> LogRecord {
    let mut bytes = marker.to_le_bytes().to_vec();
    bytes.resize(n.max(8), 0x5A);
    LogRecord {
        lsn: Lsn::NULL,
        txn: TxnId(txn),
        prev_lsn: Lsn::NULL,
        page: PageId(1),
        prev_page_lsn: Lsn::NULL,
        object: ObjectId(1),
        undo_next: Lsn::NULL,
        flags: 0,
        payload: LogPayload::InsertRecord { slot: 0, bytes },
    }
}

fn marker_of(rec: &LogRecord) -> u64 {
    match &rec.payload {
        LogPayload::InsertRecord { bytes, .. } => {
            u64::from_le_bytes(bytes[..8].try_into().unwrap())
        }
        other => panic!("unexpected payload {other:?}"),
    }
}

/// A record whose frame alone exceeds one segment.
fn oversized_rec(txn: u64) -> LogRecord {
    payload_rec(txn, 2 * SEGMENT_BYTES)
}

// ---- oversized-record seal path --------------------------------------------

#[test]
fn oversized_record_reads_back_and_scans() {
    let log = LogManager::new(LogConfig::default());
    let a = log.append(&payload_rec(1, 64));
    let big = log.append(&oversized_rec(1));
    let b = log.append(&payload_rec(1, 64)); // seals the oversized segment
    let c = log.append(&payload_rec(1, 64));

    for &lsn in &[a, big, b, c] {
        assert_eq!(log.get_record(lsn).unwrap().lsn, lsn);
    }
    let big_frame = log.get_record_ref(big).unwrap().frame_len();
    assert!(big_frame as usize > 2 * SEGMENT_BYTES);

    // The scan walks straight across the oversized segment's boundaries.
    let mut seen = Vec::new();
    log.scan(Lsn::FIRST, Lsn::MAX, |r| {
        seen.push(r.lsn);
        Ok(true)
    })
    .unwrap();
    assert_eq!(seen, vec![a, big, b, c]);

    // Flushing through the oversized record charges its whole frame.
    let s0 = log.io_stats().snapshot();
    log.flush_to(big);
    let s1 = log.io_stats().snapshot();
    let frame_a = log.get_record_ref(a).unwrap().frame_len();
    assert_eq!(
        s1.log_bytes_written - s0.log_bytes_written,
        frame_a + big_frame
    );
    assert_eq!(log.flushed_lsn(), b);
}

#[test]
fn truncation_drops_oversized_segments_whole() {
    let log = LogManager::new(LogConfig::default());
    let early = log.append(&payload_rec(1, 64));
    let big = log.append(&oversized_rec(1));
    let late = log.append(&payload_rec(1, 64)); // seals the oversized segment
    log.flush_to(log.tail_lsn());

    // Truncating below the oversized record keeps it…
    log.truncate_before(big);
    assert!(log.get_record(early).is_err());
    assert_eq!(log.get_record(big).unwrap().lsn, big);

    // …truncating past it drops the whole oversized segment at once.
    log.truncate_before(late);
    assert!(log.get_record(big).is_err());
    assert_eq!(log.get_record(late).unwrap().lsn, late);
    assert_eq!(log.truncation_point(), late);
}

#[test]
fn discard_unflushed_handles_oversized_tail() {
    let log = LogManager::new(LogConfig::default());
    let a = log.append(&payload_rec(1, 64));
    log.flush_to(a);
    let crash_point = log.flushed_lsn();

    // An unflushed oversized record (sealed by a follow-up append) must
    // evaporate entirely on discard — no partial frame survives.
    let big = log.append(&oversized_rec(1));
    let after = log.append(&payload_rec(1, 64));
    log.discard_unflushed();

    assert_eq!(log.tail_lsn(), crash_point);
    assert_eq!(log.flushed_lsn(), crash_point);
    assert_eq!(log.get_record(a).unwrap().lsn, a);
    assert!(log.get_record(big).is_err());
    assert!(log.get_record(after).is_err());

    // The log continues cleanly from the cut, including another oversized
    // record at the reused LSN.
    let big2 = log.append(&oversized_rec(2));
    assert_eq!(big2, crash_point);
    log.append(&payload_rec(2, 64));
    log.flush_to(log.tail_lsn());
    assert_eq!(log.flushed_lsn(), log.tail_lsn());
    assert_eq!(log.get_record(big2).unwrap().txn, TxnId(2));
}

// ---- group-commit durability contract --------------------------------------

/// Committer threads flush their own record through the coalescer while a
/// chaos thread discards the unflushed tail. Whatever the interleaving:
/// when `flush_to` returns, the record is durable *or* its bytes were
/// discarded (never a wakeup with the record still volatile), and
/// `flushed_lsn` never exceeds `tail_lsn`.
#[test]
fn followers_never_wake_before_durable_even_racing_discard() {
    let log = Arc::new(LogManager::new(LogConfig::default()));
    let stop = Arc::new(AtomicBool::new(false));

    let committers: Vec<_> = (0..4u64)
        .map(|t| {
            let log = log.clone();
            thread::spawn(move || {
                for i in 0..2_000u64 {
                    let marker = ((t + 1) << 32) | i;
                    let rec = marked_rec(t + 1, marker, 200);
                    let lsn = log.append(&rec);
                    let frame = match log.get_record_ref(lsn) {
                        Ok(r) => r.frame_len(),
                        Err(_) => continue, // discarded before we could read it
                    };
                    log.flush_to(lsn);
                    // `flushed` only ever grows, so if it does not cover our
                    // frame now, flush_to must have returned because the
                    // record was discarded — in which case the bytes at this
                    // LSN are no longer ours (LSNs are reused by *later*
                    // appends with different markers).
                    if log.flushed_lsn().0 < lsn.0 + frame {
                        if let Ok(now) = log.get_record(lsn) {
                            assert_ne!(
                                marker_of(&now),
                                marker,
                                "woken non-durable: record still volatile at {lsn}"
                            );
                        }
                    }
                }
            })
        })
        .collect();

    let invariant_checker = {
        let log = log.clone();
        let stop = stop.clone();
        thread::spawn(move || {
            while !stop.load(Ordering::Acquire) {
                let flushed = log.flushed_lsn();
                let tail = log.tail_lsn();
                assert!(flushed <= tail, "flushed {flushed} passed tail {tail}");
            }
        })
    };

    let chaos = {
        let log = log.clone();
        let stop = stop.clone();
        thread::spawn(move || {
            let mut n = 0u64;
            while !stop.load(Ordering::Acquire) {
                log.discard_unflushed();
                n += 1;
                if n.is_multiple_of(8) {
                    thread::yield_now();
                }
            }
            n
        })
    };

    for c in committers {
        c.join().unwrap();
    }
    stop.store(true, Ordering::Release);
    invariant_checker.join().unwrap();
    assert!(chaos.join().unwrap() > 0);
    assert!(log.flushed_lsn() <= log.tail_lsn());
}

/// With a modeled device sync latency, concurrent committers coalesce: the
/// number of physical flushes is strictly less than the number of commits
/// (at 4 committers it should approach one flush per batch).
#[test]
fn concurrent_flushes_coalesce_behind_one_leader() {
    let log = Arc::new(LogManager::new(LogConfig {
        flush_delay_us: 50,
        ..LogConfig::default()
    }));
    let threads = 4u64;
    let per_thread = 100u64;
    let s0 = log.io_stats().snapshot();

    let handles: Vec<_> = (0..threads)
        .map(|t| {
            let log = log.clone();
            thread::spawn(move || {
                for _ in 0..per_thread {
                    let lsn = log.append(&payload_rec(t + 1, 120));
                    log.flush_to(lsn);
                    assert!(log.flushed_lsn().0 > lsn.0);
                }
            })
        })
        .collect();
    for h in handles {
        h.join().unwrap();
    }

    let commits = threads * per_thread;
    let flushes = log.io_stats().snapshot().log_flushes - s0.log_flushes;
    assert!(flushes > 0);
    assert!(
        flushes < commits,
        "no coalescing: {flushes} flushes for {commits} commits"
    );
    // Exact aggregate attribution: everything flushed is everything
    // appended — charged once, with no bystander bytes.
    assert_eq!(log.flushed_lsn(), log.tail_lsn());
    let written = log.io_stats().snapshot().log_bytes_written - s0.log_bytes_written;
    assert_eq!(written, log.total_bytes());
}
