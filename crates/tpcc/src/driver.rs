//! The multithreaded TPC-C driver.
//!
//! The paper runs "8 clients simulating 25 users each" and measures
//! transactions per minute. [`run_mixed`] runs worker threads against the
//! engine with the standard mix, retries deadlock victims, and advances the
//! simulated clock so that throughput maps onto a wall-clock axis — which
//! is what "rewind T minutes" experiments sweep.

use crate::schema::{last_name, TpccScale};
use crate::txns::{
    delivery, new_order, order_status, payment, stock_level, CustomerSelector, NewOrderLine,
};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use rewind_core::{Database, Error, Result};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Driver configuration.
#[derive(Clone, Debug)]
pub struct DriverConfig {
    /// Worker threads.
    pub threads: usize,
    /// Committed transactions to run per thread.
    pub txns_per_thread: u64,
    /// Simulated microseconds the clock advances per committed transaction
    /// (models the paper's observed rates: its ~100 GB / 50 min run is a
    /// time-vs-log ratio, not a wall-clock requirement).
    pub us_per_txn: u64,
    /// RNG seed.
    pub seed: u64,
    /// Fraction (0-100) of NewOrder transactions that hit an invalid item
    /// and roll back (TPC-C says 1%).
    pub rollback_pct: u64,
}

impl Default for DriverConfig {
    fn default() -> Self {
        DriverConfig {
            threads: 4,
            txns_per_thread: 200,
            us_per_txn: 10_000,
            seed: 42,
            rollback_pct: 1,
        }
    }
}

/// Aggregated driver results.
#[derive(Clone, Copy, Debug, Default)]
pub struct RunStats {
    /// Committed NewOrder transactions.
    pub new_orders: u64,
    /// Committed Payment transactions.
    pub payments: u64,
    /// Committed OrderStatus transactions.
    pub order_statuses: u64,
    /// Committed Delivery transactions.
    pub deliveries: u64,
    /// Committed StockLevel transactions.
    pub stock_levels: u64,
    /// Intentional rollbacks (invalid item).
    pub intentional_rollbacks: u64,
    /// Deadlock/timeout retries.
    pub retries: u64,
    /// Simulated microseconds elapsed during the run.
    pub sim_elapsed_us: u64,
    /// Real microseconds elapsed during the run.
    pub real_elapsed_us: u64,
}

impl RunStats {
    /// Total committed transactions.
    pub fn committed(&self) -> u64 {
        self.new_orders + self.payments + self.order_statuses + self.deliveries + self.stock_levels
    }

    /// NewOrder transactions per simulated minute (the tpmC analogue).
    pub fn tpm_c(&self) -> f64 {
        if self.sim_elapsed_us == 0 {
            return 0.0;
        }
        self.new_orders as f64 / (self.sim_elapsed_us as f64 / 60_000_000.0)
    }
}

struct Counters {
    new_orders: AtomicU64,
    payments: AtomicU64,
    order_statuses: AtomicU64,
    deliveries: AtomicU64,
    stock_levels: AtomicU64,
    intentional_rollbacks: AtomicU64,
    retries: AtomicU64,
}

/// Run the standard TPC-C mix (45/43/4/4/4) against `db`.
pub fn run_mixed(db: &Arc<Database>, scale: &TpccScale, cfg: &DriverConfig) -> Result<RunStats> {
    let counters = Counters {
        new_orders: AtomicU64::new(0),
        payments: AtomicU64::new(0),
        order_statuses: AtomicU64::new(0),
        deliveries: AtomicU64::new(0),
        stock_levels: AtomicU64::new(0),
        intentional_rollbacks: AtomicU64::new(0),
        retries: AtomicU64::new(0),
    };
    let sim_start = db.clock().now();
    #[allow(clippy::disallowed_methods)]
    // tidy: allow(wall-clock) -- benchmark throughput is measured in real elapsed time
    let real_start = std::time::Instant::now();

    std::thread::scope(|s| {
        let mut handles = Vec::new();
        for t in 0..cfg.threads {
            let db = db.clone();
            let counters = &counters;
            let scale = *scale;
            let cfg = cfg.clone();
            handles.push(s.spawn(move || -> Result<()> {
                let mut rng = SmallRng::seed_from_u64(cfg.seed ^ (t as u64 + 1) << 17);
                let mut committed = 0u64;
                while committed < cfg.txns_per_thread {
                    match run_one(&db, &scale, &cfg, &mut rng, counters) {
                        Ok(true) => {
                            committed += 1;
                            db.clock().advance_micros(cfg.us_per_txn);
                        }
                        Ok(false) => {
                            // intentional rollback counts as work done
                            committed += 1;
                            db.clock().advance_micros(cfg.us_per_txn);
                        }
                        Err(Error::Deadlock(_)) | Err(Error::LockTimeout(_)) => {
                            counters.retries.fetch_add(1, Ordering::Relaxed);
                        }
                        Err(e) => return Err(e),
                    }
                }
                Ok(())
            }));
        }
        for h in handles {
            h.join()
                .map_err(|_| Error::Internal("tpcc worker panicked".into()))??;
        }
        Ok::<(), Error>(())
    })?;

    Ok(RunStats {
        new_orders: counters.new_orders.load(Ordering::Relaxed),
        payments: counters.payments.load(Ordering::Relaxed),
        order_statuses: counters.order_statuses.load(Ordering::Relaxed),
        deliveries: counters.deliveries.load(Ordering::Relaxed),
        stock_levels: counters.stock_levels.load(Ordering::Relaxed),
        intentional_rollbacks: counters.intentional_rollbacks.load(Ordering::Relaxed),
        retries: counters.retries.load(Ordering::Relaxed),
        sim_elapsed_us: db.clock().now().micros_since(sim_start),
        real_elapsed_us: real_start.elapsed().as_micros() as u64,
    })
}

/// Execute one randomly chosen transaction. `Ok(true)` committed, `Ok(false)`
/// intentionally rolled back; deadlocks/timeouts bubble up for retry.
fn run_one(
    db: &Arc<Database>,
    scale: &TpccScale,
    cfg: &DriverConfig,
    rng: &mut SmallRng,
    counters: &Counters,
) -> Result<bool> {
    let w_id = 1 + rng.gen_range(0..scale.warehouses);
    let d_id = 1 + rng.gen_range(0..scale.districts_per_warehouse);
    let c_id = 1 + rng.gen_range(0..scale.customers_per_district);
    let pick = rng.gen_range(0..100u64);

    if pick < 45 {
        // NewOrder
        let n_lines = rng.gen_range(5..=15usize);
        let poison = rng.gen_range(0..100u64) < cfg.rollback_pct;
        let mut lines = Vec::with_capacity(n_lines);
        for i in 0..n_lines {
            let item_id = if poison && i == n_lines - 1 {
                u64::MAX // invalid: forces rollback
            } else {
                1 + rng.gen_range(0..scale.items)
            };
            let supply_w_id = if scale.warehouses > 1 && rng.gen_range(0..100) < 10 {
                1 + rng.gen_range(0..scale.warehouses)
            } else {
                w_id
            };
            lines.push(NewOrderLine {
                item_id,
                supply_w_id,
                quantity: 1 + rng.gen_range(0..10),
            });
        }
        let txn = db.begin();
        match new_order(db, &txn, w_id, d_id, c_id, &lines) {
            Ok(_) => {
                db.commit(txn)?;
                counters.new_orders.fetch_add(1, Ordering::Relaxed);
                Ok(true)
            }
            Err(Error::KeyNotFound) if poison => {
                db.rollback(txn)?;
                counters
                    .intentional_rollbacks
                    .fetch_add(1, Ordering::Relaxed);
                Ok(false)
            }
            Err(e) => {
                let _ = db.rollback(txn);
                Err(e)
            }
        }
    } else if pick < 88 {
        // Payment: 60% by last name
        let selector_name;
        let selector = if rng.gen_range(0..100) < 60 {
            selector_name = last_name(rng.gen_range(0..scale.customers_per_district));
            CustomerSelector::ByLastName(&selector_name)
        } else {
            CustomerSelector::ById(c_id)
        };
        let amount = 1.0 + rng.gen_range(0..5000) as f64 / 100.0;
        let txn = db.begin();
        match payment(db, &txn, w_id, d_id, selector, amount) {
            Ok(()) => {
                db.commit(txn)?;
                counters.payments.fetch_add(1, Ordering::Relaxed);
                Ok(true)
            }
            Err(Error::KeyNotFound) => {
                // customer name with no match at tiny scales
                db.rollback(txn)?;
                Ok(false)
            }
            Err(e) => {
                let _ = db.rollback(txn);
                Err(e)
            }
        }
    } else if pick < 92 {
        // OrderStatus
        let txn = db.begin();
        match order_status(db, &txn, w_id, d_id, CustomerSelector::ById(c_id)) {
            Ok(_) => {
                db.commit(txn)?;
                counters.order_statuses.fetch_add(1, Ordering::Relaxed);
                Ok(true)
            }
            Err(e) => {
                let _ = db.rollback(txn);
                Err(e)
            }
        }
    } else if pick < 96 {
        // Delivery
        let txn = db.begin();
        match delivery(
            db,
            &txn,
            w_id,
            rng.gen_range(1..=10i64),
            scale.districts_per_warehouse,
        ) {
            Ok(_) => {
                db.commit(txn)?;
                counters.deliveries.fetch_add(1, Ordering::Relaxed);
                Ok(true)
            }
            Err(e) => {
                let _ = db.rollback(txn);
                Err(e)
            }
        }
    } else {
        // StockLevel
        let txn = db.begin();
        match stock_level(db, &txn, w_id, d_id, 10 + rng.gen_range(0..11i64)) {
            Ok(_) => {
                db.commit(txn)?;
                counters.stock_levels.fetch_add(1, Ordering::Relaxed);
                Ok(true)
            }
            Err(e) => {
                let _ = db.rollback(txn);
                Err(e)
            }
        }
    }
}
