//! Initial TPC-C population.

use crate::schema::{last_name, TpccScale};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use rewind_core::{Database, Result, Value};

/// What the loader created.
#[derive(Clone, Copy, Debug, Default)]
pub struct LoadSummary {
    /// Rows inserted across all tables.
    pub rows: u64,
    /// Orders pre-loaded per district.
    pub orders_per_district: u64,
}

fn fill(rng: &mut SmallRng, min: usize, max: usize) -> String {
    let len = rng.gen_range(min..=max);
    (0..len)
        .map(|_| (b'a' + rng.gen_range(0..26)) as char)
        .collect()
}

/// Populate the database per `scale`. Commits in batches so the log
/// contains realistic transaction boundaries.
pub fn load_initial(db: &Database, scale: &TpccScale) -> Result<LoadSummary> {
    let mut rng = SmallRng::seed_from_u64(0xC0FFEE);
    let mut rows = 0u64;

    // items
    db.with_txn(|txn| {
        for i_id in 1..=scale.items {
            db.insert(
                txn,
                "item",
                &[
                    Value::U64(i_id),
                    Value::Str(format!("item-{i_id}")),
                    Value::F64(1.0 + (i_id % 100) as f64),
                    Value::Str(fill(&mut rng, 8, 24)),
                ],
            )?;
            rows += 1;
        }
        Ok(())
    })?;

    for w_id in 1..=scale.warehouses {
        db.with_txn(|txn| {
            db.insert(
                txn,
                "warehouse",
                &[
                    Value::U64(w_id),
                    Value::Str(format!("wh-{w_id}")),
                    Value::F64(0.05),
                    Value::F64(300_000.0),
                ],
            )?;
            rows += 1;
            for i_id in 1..=scale.items {
                db.insert(
                    txn,
                    "stock",
                    &[
                        Value::U64(w_id),
                        Value::U64(i_id),
                        Value::I64(50 + (i_id % 50) as i64),
                        Value::F64(0.0),
                        Value::U64(0),
                        Value::U64(0),
                        Value::Str(fill(&mut rng, 8, 24)),
                    ],
                )?;
                rows += 1;
            }
            Ok(())
        })?;

        for d_id in 1..=scale.districts_per_warehouse {
            db.with_txn(|txn| {
                let next_o_id = scale.initial_orders_per_district + 1;
                db.insert(
                    txn,
                    "district",
                    &[
                        Value::U64(w_id),
                        Value::U64(d_id),
                        Value::Str(format!("dist-{w_id}-{d_id}")),
                        Value::F64(0.07),
                        Value::F64(30_000.0),
                        Value::U64(next_o_id),
                    ],
                )?;
                rows += 1;
                for c_id in 1..=scale.customers_per_district {
                    db.insert(
                        txn,
                        "customer",
                        &[
                            Value::U64(w_id),
                            Value::U64(d_id),
                            Value::U64(c_id),
                            Value::Str(last_name(c_id - 1)),
                            Value::Str(fill(&mut rng, 6, 12)),
                            Value::F64(-10.0),
                            Value::F64(10.0),
                            Value::U64(1),
                            Value::U64(0),
                            Value::Str(fill(&mut rng, 30, 60)),
                        ],
                    )?;
                    rows += 1;
                }
                // pre-loaded orders with lines
                for o_id in 1..=scale.initial_orders_per_district {
                    let c_id = 1 + rng.gen_range(0..scale.customers_per_district);
                    let ol_cnt = 5 + rng.gen_range(0..6u64);
                    db.insert(
                        txn,
                        "orders",
                        &[
                            Value::U64(w_id),
                            Value::U64(d_id),
                            Value::U64(o_id),
                            Value::U64(c_id),
                            Value::U64(db.clock().now().as_micros()),
                            Value::I64(if o_id * 10 < scale.initial_orders_per_district * 7 {
                                rng.gen_range(1..=10i64)
                            } else {
                                -1
                            }),
                            Value::U64(ol_cnt),
                        ],
                    )?;
                    rows += 1;
                    // undelivered tail goes to new_order
                    if o_id * 10 >= scale.initial_orders_per_district * 7 {
                        db.insert(
                            txn,
                            "new_order",
                            &[Value::U64(w_id), Value::U64(d_id), Value::U64(o_id)],
                        )?;
                        rows += 1;
                    }
                    for ol in 1..=ol_cnt {
                        db.insert(
                            txn,
                            "order_line",
                            &[
                                Value::U64(w_id),
                                Value::U64(d_id),
                                Value::U64(o_id),
                                Value::U64(ol),
                                Value::U64(1 + rng.gen_range(0..scale.items)),
                                Value::U64(w_id),
                                Value::I64(0),
                                Value::I64(5),
                                Value::F64(rng.gen_range(1.0..100.0)),
                            ],
                        )?;
                        rows += 1;
                    }
                }
                Ok(())
            })?;
        }
    }
    Ok(LoadSummary {
        rows,
        orders_per_district: scale.initial_orders_per_district,
    })
}
