//! The five TPC-C transactions.
//!
//! Each function runs inside a caller-provided transaction handle; callers
//! commit/rollback and retry on deadlock. `stock_level` is the paper's
//! measurement query (§6.2) and has an as-of twin running against a
//! [`SnapshotDb`].

use rewind_core::{Database, Error, Result, SnapshotDb, Txn, Value};
use std::collections::HashSet;

/// One requested line of a NewOrder.
#[derive(Clone, Copy, Debug)]
pub struct NewOrderLine {
    /// Item ordered. An invalid id makes the whole transaction roll back
    /// (TPC-C's 1% "unused item" rule — it exercises the rollback path).
    pub item_id: u64,
    /// Supplying warehouse (usually the home warehouse).
    pub supply_w_id: u64,
    /// Quantity.
    pub quantity: i64,
}

/// TPC-C NewOrder. Returns the order id.
pub fn new_order(
    db: &Database,
    txn: &Txn,
    w_id: u64,
    d_id: u64,
    c_id: u64,
    lines: &[NewOrderLine],
) -> Result<u64> {
    // district: read-modify-write next_o_id
    let district = db
        .get_for_update(txn, "district", &[Value::U64(w_id), Value::U64(d_id)])?
        .ok_or(Error::KeyNotFound)?;
    let o_id = district[5].as_u64()?;
    let mut d = district.clone();
    d[5] = Value::U64(o_id + 1);
    db.update(txn, "district", &d)?;

    db.insert(
        txn,
        "orders",
        &[
            Value::U64(w_id),
            Value::U64(d_id),
            Value::U64(o_id),
            Value::U64(c_id),
            Value::U64(db.clock().now().as_micros()),
            Value::I64(-1),
            Value::U64(lines.len() as u64),
        ],
    )?;
    db.insert(
        txn,
        "new_order",
        &[Value::U64(w_id), Value::U64(d_id), Value::U64(o_id)],
    )?;

    for (n, line) in lines.iter().enumerate() {
        // invalid item => whole transaction aborts (caller rolls back)
        let item = db
            .get(txn, "item", &[Value::U64(line.item_id)])?
            .ok_or(Error::KeyNotFound)?;
        let price = item[2].as_f64()?;
        let stock = db
            .get_for_update(
                txn,
                "stock",
                &[Value::U64(line.supply_w_id), Value::U64(line.item_id)],
            )?
            .ok_or(Error::KeyNotFound)?;
        let mut s = stock.clone();
        let qty = s[2].as_i64()?;
        s[2] = Value::I64(if qty >= line.quantity + 10 {
            qty - line.quantity
        } else {
            qty - line.quantity + 91
        });
        s[3] = Value::F64(s[3].as_f64()? + line.quantity as f64);
        s[4] = Value::U64(s[4].as_u64()? + 1);
        if line.supply_w_id != w_id {
            s[5] = Value::U64(s[5].as_u64()? + 1);
        }
        db.update(txn, "stock", &s)?;
        db.insert(
            txn,
            "order_line",
            &[
                Value::U64(w_id),
                Value::U64(d_id),
                Value::U64(o_id),
                Value::U64((n + 1) as u64),
                Value::U64(line.item_id),
                Value::U64(line.supply_w_id),
                Value::I64(0),
                Value::I64(line.quantity),
                Value::F64(price * line.quantity as f64),
            ],
        )?;
    }
    Ok(o_id)
}

/// TPC-C Payment. `by_last_name` selects the customer by name (60% case).
pub fn payment(
    db: &Database,
    txn: &Txn,
    w_id: u64,
    d_id: u64,
    customer: CustomerSelector<'_>,
    amount: f64,
) -> Result<()> {
    let wh = db
        .get_for_update(txn, "warehouse", &[Value::U64(w_id)])?
        .ok_or(Error::KeyNotFound)?;
    let mut w = wh.clone();
    w[3] = Value::F64(w[3].as_f64()? + amount);
    db.update(txn, "warehouse", &w)?;

    let district = db
        .get_for_update(txn, "district", &[Value::U64(w_id), Value::U64(d_id)])?
        .ok_or(Error::KeyNotFound)?;
    let mut d = district.clone();
    d[4] = Value::F64(d[4].as_f64()? + amount);
    db.update(txn, "district", &d)?;

    let cust = match customer {
        CustomerSelector::ById(c_id) => db
            .get_for_update(
                txn,
                "customer",
                &[Value::U64(w_id), Value::U64(d_id), Value::U64(c_id)],
            )?
            .ok_or(Error::KeyNotFound)?,
        CustomerSelector::ByLastName(name) => {
            // TPC-C: take the middle matching customer, ordered by first name;
            // we order by c_id (our index suffix) which preserves the shape.
            let matches = db.scan_index_prefix(
                txn,
                "customer",
                "customer_by_name",
                &[Value::U64(w_id), Value::U64(d_id), Value::str(name)],
                1000,
            )?;
            if matches.is_empty() {
                return Err(Error::KeyNotFound);
            }
            let row = matches[matches.len() / 2].clone();
            // upgrade to X
            db.get_for_update(
                txn,
                "customer",
                &[row[0].clone(), row[1].clone(), row[2].clone()],
            )?
            .ok_or(Error::KeyNotFound)?
        }
    };
    let mut c = cust.clone();
    c[5] = Value::F64(c[5].as_f64()? - amount);
    c[6] = Value::F64(c[6].as_f64()? + amount);
    c[7] = Value::U64(c[7].as_u64()? + 1);
    db.update(txn, "customer", &c)?;

    db.insert(
        txn,
        "history",
        &[
            c[2].clone(),
            c[1].clone(),
            c[0].clone(),
            Value::U64(d_id),
            Value::U64(w_id),
            Value::U64(db.clock().now().as_micros()),
            Value::F64(amount),
            Value::Str(format!("payment w{w_id} d{d_id}")),
        ],
    )?;
    Ok(())
}

/// How Payment / OrderStatus pick their customer.
#[derive(Clone, Copy, Debug)]
pub enum CustomerSelector<'a> {
    /// Directly by id.
    ById(u64),
    /// By last name (the 60% TPC-C case).
    ByLastName(&'a str),
}

/// TPC-C OrderStatus: the customer's most recent order and its lines.
/// Returns (order id, line count).
pub fn order_status(
    db: &Database,
    txn: &Txn,
    w_id: u64,
    d_id: u64,
    customer: CustomerSelector<'_>,
) -> Result<Option<(u64, usize)>> {
    let c_id = match customer {
        CustomerSelector::ById(c_id) => {
            db.get(
                txn,
                "customer",
                &[Value::U64(w_id), Value::U64(d_id), Value::U64(c_id)],
            )?
            .ok_or(Error::KeyNotFound)?;
            c_id
        }
        CustomerSelector::ByLastName(name) => {
            let matches = db.scan_index_prefix(
                txn,
                "customer",
                "customer_by_name",
                &[Value::U64(w_id), Value::U64(d_id), Value::str(name)],
                1000,
            )?;
            if matches.is_empty() {
                return Err(Error::KeyNotFound);
            }
            matches[matches.len() / 2][2].as_u64()?
        }
    };
    let last = db.last_by_index_prefix(
        txn,
        "orders",
        "orders_by_customer",
        &[Value::U64(w_id), Value::U64(d_id), Value::U64(c_id)],
    )?;
    match last {
        Some(order) => {
            let o_id = order[2].as_u64()?;
            let lines = db.scan_prefix(
                txn,
                "order_line",
                &[Value::U64(w_id), Value::U64(d_id), Value::U64(o_id)],
            )?;
            Ok(Some((o_id, lines.len())))
        }
        None => Ok(None),
    }
}

/// TPC-C Delivery: deliver the oldest undelivered order of each district.
/// Returns the number of orders delivered.
pub fn delivery(
    db: &Database,
    txn: &Txn,
    w_id: u64,
    carrier_id: i64,
    districts: u64,
) -> Result<usize> {
    let mut delivered = 0usize;
    for d_id in 1..=districts {
        let pending = db.scan_prefix(txn, "new_order", &[Value::U64(w_id), Value::U64(d_id)])?;
        let Some(oldest) = pending.first() else {
            continue;
        };
        let o_id = oldest[2].as_u64()?;
        db.delete(
            txn,
            "new_order",
            &[Value::U64(w_id), Value::U64(d_id), Value::U64(o_id)],
        )?;

        let order = db
            .get_for_update(
                txn,
                "orders",
                &[Value::U64(w_id), Value::U64(d_id), Value::U64(o_id)],
            )?
            .ok_or(Error::KeyNotFound)?;
        let c_id = order[3].as_u64()?;
        let mut o = order.clone();
        o[5] = Value::I64(carrier_id);
        db.update(txn, "orders", &o)?;

        let lines = db.scan_prefix(
            txn,
            "order_line",
            &[Value::U64(w_id), Value::U64(d_id), Value::U64(o_id)],
        )?;
        let mut total = 0.0;
        let now = db.clock().now().as_micros() as i64;
        for line in &lines {
            total += line[8].as_f64()?;
            let mut l = line.clone();
            l[6] = Value::I64(now);
            db.update(txn, "order_line", &l)?;
        }

        let cust = db
            .get_for_update(
                txn,
                "customer",
                &[Value::U64(w_id), Value::U64(d_id), Value::U64(c_id)],
            )?
            .ok_or(Error::KeyNotFound)?;
        let mut c = cust.clone();
        c[5] = Value::F64(c[5].as_f64()? + total);
        c[8] = Value::U64(c[8].as_u64()? + 1);
        db.update(txn, "customer", &c)?;
        delivered += 1;
    }
    Ok(delivered)
}

/// TPC-C StockLevel against the live database: how many distinct items in
/// the district's last 20 orders have stock below `threshold`.
pub fn stock_level(
    db: &Database,
    txn: &Txn,
    w_id: u64,
    d_id: u64,
    threshold: i64,
) -> Result<usize> {
    let district = db
        .get(txn, "district", &[Value::U64(w_id), Value::U64(d_id)])?
        .ok_or(Error::KeyNotFound)?;
    let next_o_id = district[5].as_u64()?;
    let lo = next_o_id.saturating_sub(20);
    let lines = db.scan_between(
        txn,
        "order_line",
        &[Value::U64(w_id), Value::U64(d_id), Value::U64(lo)],
        &[Value::U64(w_id), Value::U64(d_id), Value::U64(next_o_id)],
    )?;
    let items: HashSet<u64> = lines.iter().map(|l| l[4].as_u64()).collect::<Result<_>>()?;
    let mut low = 0usize;
    for i_id in items {
        let stock = db
            .get(txn, "stock", &[Value::U64(w_id), Value::U64(i_id)])?
            .ok_or(Error::KeyNotFound)?;
        if stock[2].as_i64()? < threshold {
            low += 1;
        }
    }
    Ok(low)
}

/// The paper's §1 "application error", batch-job flavour: a promotion
/// script meant to credit one district's customers is run with a missing
/// predicate and instead walks **every** customer of the warehouse,
/// zeroing balances and stamping its marker into `c_data`. Run it inside
/// the caller's transaction so the whole batch commits as one unit — the
/// exact shape the flashback engine repairs by `TxnId`. Returns the number
/// of rows damaged.
pub fn bad_credit_batch(db: &Database, txn: &Txn, w_id: u64) -> Result<u64> {
    let customers = db.scan_prefix(txn, "customer", &[Value::U64(w_id)])?;
    let mut damaged = 0u64;
    for mut c in customers {
        c[5] = Value::F64(0.0); // c_balance wiped
        c[6] = Value::F64(0.0); // c_ytd_payment wiped
        c[9] = Value::str("PROMO-APPLIED"); // c_data clobbered
        db.update(txn, "customer", &c)?;
        damaged += 1;
    }
    Ok(damaged)
}

/// The paper's as-of query (§6.2): StockLevel against an as-of snapshot —
/// same logic, read through the snapshot's page-access protocol.
pub fn stock_level_asof(snap: &SnapshotDb, w_id: u64, d_id: u64, threshold: i64) -> Result<usize> {
    let district_t = snap.table("district")?;
    let order_line_t = snap.table("order_line")?;
    let stock_t = snap.table("stock")?;

    let district = snap
        .get(&district_t, &[Value::U64(w_id), Value::U64(d_id)])?
        .ok_or(Error::KeyNotFound)?;
    let next_o_id = district[5].as_u64()?;
    let lo = next_o_id.saturating_sub(20);
    let lines = snap.scan_between(
        &order_line_t,
        &[Value::U64(w_id), Value::U64(d_id), Value::U64(lo)],
        &[Value::U64(w_id), Value::U64(d_id), Value::U64(next_o_id)],
    )?;
    let items: HashSet<u64> = lines.iter().map(|l| l[4].as_u64()).collect::<Result<_>>()?;
    let mut low = 0usize;
    for i_id in items {
        let stock = snap
            .get(&stock_t, &[Value::U64(w_id), Value::U64(i_id)])?
            .ok_or(Error::KeyNotFound)?;
        if stock[2].as_i64()? < threshold {
            low += 1;
        }
    }
    Ok(low)
}
