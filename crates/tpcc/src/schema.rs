//! TPC-C schema definition.

use rewind_core::{Column, DataType, Database, Result, Schema};

/// Workload scale parameters. Defaults are laptop-scale; the paper's run
/// used 800 warehouses / 40 GB — shape, not size, is what the experiments
/// sweep.
#[derive(Clone, Copy, Debug)]
pub struct TpccScale {
    /// Number of warehouses.
    pub warehouses: u64,
    /// Districts per warehouse (TPC-C fixes this at 10).
    pub districts_per_warehouse: u64,
    /// Customers per district (TPC-C: 3000).
    pub customers_per_district: u64,
    /// Items in the catalog (TPC-C: 100 000).
    pub items: u64,
    /// Initial orders per district (TPC-C: 3000).
    pub initial_orders_per_district: u64,
}

impl Default for TpccScale {
    fn default() -> Self {
        TpccScale {
            warehouses: 2,
            districts_per_warehouse: 10,
            customers_per_district: 30,
            items: 200,
            initial_orders_per_district: 30,
        }
    }
}

impl TpccScale {
    /// A tiny scale for unit tests.
    pub fn tiny() -> Self {
        TpccScale {
            warehouses: 1,
            districts_per_warehouse: 2,
            customers_per_district: 10,
            items: 50,
            initial_orders_per_district: 5,
        }
    }
}

fn u(name: &str) -> Column {
    Column::new(name, DataType::U64)
}

fn i(name: &str) -> Column {
    Column::new(name, DataType::I64)
}

fn f(name: &str) -> Column {
    Column::new(name, DataType::F64)
}

fn s(name: &str) -> Column {
    Column::new(name, DataType::Str)
}

/// Create all nine TPC-C tables plus the two secondary indexes.
pub fn create_schema(db: &Database) -> Result<()> {
    db.with_txn(|txn| {
        db.create_table(
            txn,
            "warehouse",
            Schema::new(
                vec![u("w_id"), s("w_name"), f("w_tax"), f("w_ytd")],
                &["w_id"],
            )?,
        )?;
        db.create_table(
            txn,
            "district",
            Schema::new(
                vec![
                    u("d_w_id"),
                    u("d_id"),
                    s("d_name"),
                    f("d_tax"),
                    f("d_ytd"),
                    u("d_next_o_id"),
                ],
                &["d_w_id", "d_id"],
            )?,
        )?;
        db.create_table(
            txn,
            "customer",
            Schema::new(
                vec![
                    u("c_w_id"),
                    u("c_d_id"),
                    u("c_id"),
                    s("c_last"),
                    s("c_first"),
                    f("c_balance"),
                    f("c_ytd_payment"),
                    u("c_payment_cnt"),
                    u("c_delivery_cnt"),
                    s("c_data"),
                ],
                &["c_w_id", "c_d_id", "c_id"],
            )?,
        )?;
        db.create_table(
            txn,
            "item",
            Schema::new(
                vec![u("i_id"), s("i_name"), f("i_price"), s("i_data")],
                &["i_id"],
            )?,
        )?;
        db.create_table(
            txn,
            "stock",
            Schema::new(
                vec![
                    u("s_w_id"),
                    u("s_i_id"),
                    i("s_quantity"),
                    f("s_ytd"),
                    u("s_order_cnt"),
                    u("s_remote_cnt"),
                    s("s_data"),
                ],
                &["s_w_id", "s_i_id"],
            )?,
        )?;
        db.create_table(
            txn,
            "orders",
            Schema::new(
                vec![
                    u("o_w_id"),
                    u("o_d_id"),
                    u("o_id"),
                    u("o_c_id"),
                    u("o_entry_d"),
                    i("o_carrier_id"),
                    u("o_ol_cnt"),
                ],
                &["o_w_id", "o_d_id", "o_id"],
            )?,
        )?;
        db.create_table(
            txn,
            "new_order",
            Schema::new(
                vec![u("no_w_id"), u("no_d_id"), u("no_o_id")],
                &["no_w_id", "no_d_id", "no_o_id"],
            )?,
        )?;
        db.create_table(
            txn,
            "order_line",
            Schema::new(
                vec![
                    u("ol_w_id"),
                    u("ol_d_id"),
                    u("ol_o_id"),
                    u("ol_number"),
                    u("ol_i_id"),
                    u("ol_supply_w_id"),
                    i("ol_delivery_d"),
                    i("ol_quantity"),
                    f("ol_amount"),
                ],
                &["ol_w_id", "ol_d_id", "ol_o_id", "ol_number"],
            )?,
        )?;
        // HISTORY is a heap: insert-only, no key (paper §7.2's point that
        // the mechanism covers heaps too).
        db.create_heap_table(
            txn,
            "history",
            Schema::new(
                vec![
                    u("h_c_id"),
                    u("h_c_d_id"),
                    u("h_c_w_id"),
                    u("h_d_id"),
                    u("h_w_id"),
                    u("h_date"),
                    f("h_amount"),
                    s("h_data"),
                ],
                &["h_c_id"], // heaps ignore key ordering; schema requires one
            )?,
        )?;
        db.create_index(
            txn,
            "customer",
            "customer_by_name",
            &["c_w_id", "c_d_id", "c_last"],
        )?;
        db.create_index(
            txn,
            "orders",
            "orders_by_customer",
            &["o_w_id", "o_d_id", "o_c_id"],
        )?;
        Ok(())
    })
}

/// The ten TPC-C syllables used to build customer last names.
pub const SYLLABLES: [&str; 10] = [
    "BAR", "OUGHT", "ABLE", "PRI", "PRES", "ESE", "ANTI", "CALLY", "ATION", "EING",
];

/// TPC-C last-name generator: three syllables from the digits of `n`.
pub fn last_name(n: u64) -> String {
    let n = n % 1000;
    format!(
        "{}{}{}",
        SYLLABLES[(n / 100) as usize],
        SYLLABLES[((n / 10) % 10) as usize],
        SYLLABLES[(n % 10) as usize]
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn last_names_follow_spec() {
        assert_eq!(last_name(0), "BARBARBAR");
        assert_eq!(last_name(371), "PRICALLYOUGHT");
        assert_eq!(last_name(999), "EINGEINGEING");
        assert_eq!(last_name(1371), "PRICALLYOUGHT");
    }
}
