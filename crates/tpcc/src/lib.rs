//! A scaled-down TPC-C-like workload (paper §6).
//!
//! The paper evaluates with "a scaled-down version of the TPC-C benchmark"
//! (800 warehouses, 10 districts/warehouse, 8×25 users). This crate
//! implements the same schema and transaction mix at configurable scale:
//! NewOrder / Payment / OrderStatus / Delivery / StockLevel over warehouse,
//! district, customer, item, stock, orders, new_order, order_line (B-Trees)
//! and history (a heap), with the two secondary indexes the transactions
//! need (customer by last name, orders by customer).
//!
//! StockLevel — "a TPC-C stock level stored procedure against a fixed
//! district/warehouse" — is the paper's as-of query (§6.2); it is provided
//! both against the live database and against a [`rewind_core::SnapshotDb`].

pub mod driver;
pub mod load;
pub mod schema;
pub mod txns;

pub use driver::{run_mixed, DriverConfig, RunStats};
pub use load::{load_initial, LoadSummary};
pub use schema::{create_schema, TpccScale};
pub use txns::{
    bad_credit_batch, delivery, new_order, order_status, payment, stock_level, stock_level_asof,
    NewOrderLine,
};
