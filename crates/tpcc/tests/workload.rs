//! TPC-C workload integration tests: consistency invariants under the mixed
//! workload, and the as-of StockLevel query.

use rewind_core::{Database, DbConfig, Value};
use rewind_tpcc::{
    create_schema, load_initial, run_mixed, stock_level, stock_level_asof, DriverConfig, TpccScale,
};
use std::sync::Arc;

fn build(scale: &TpccScale) -> Arc<Database> {
    let db = Arc::new(
        Database::create(DbConfig {
            buffer_pages: 2048,
            ..DbConfig::default()
        })
        .unwrap(),
    );
    create_schema(&db).unwrap();
    load_initial(&db, scale).unwrap();
    db
}

#[test]
fn load_produces_consistent_counts() {
    let scale = TpccScale::tiny();
    let db = build(&scale);
    assert_eq!(
        db.count_approx("warehouse").unwrap() as u64,
        scale.warehouses
    );
    assert_eq!(
        db.count_approx("district").unwrap() as u64,
        scale.warehouses * scale.districts_per_warehouse
    );
    assert_eq!(
        db.count_approx("customer").unwrap() as u64,
        scale.warehouses * scale.districts_per_warehouse * scale.customers_per_district
    );
    assert_eq!(db.count_approx("item").unwrap() as u64, scale.items);
    assert_eq!(
        db.count_approx("stock").unwrap() as u64,
        scale.warehouses * scale.items
    );
    assert_eq!(
        db.count_approx("orders").unwrap() as u64,
        scale.warehouses * scale.districts_per_warehouse * scale.initial_orders_per_district
    );
}

#[test]
fn mixed_workload_maintains_invariants() {
    let scale = TpccScale::default();
    let db = build(&scale);
    let cfg = DriverConfig {
        threads: 4,
        txns_per_thread: 100,
        ..DriverConfig::default()
    };
    let stats = run_mixed(&db, &scale, &cfg).unwrap();
    assert_eq!(stats.committed() + stats.intentional_rollbacks, 400);
    assert!(
        stats.new_orders > 100,
        "mix should be ~45% NewOrder: {stats:?}"
    );
    assert!(stats.tpm_c() > 0.0);

    // Invariant: every order's o_ol_cnt matches its order_line rows, and
    // d_next_o_id is above every existing order id.
    db.with_txn(|txn| {
        for w in 1..=scale.warehouses {
            for d in 1..=scale.districts_per_warehouse {
                let district = db
                    .get(txn, "district", &[Value::U64(w), Value::U64(d)])?
                    .unwrap();
                let next_o_id = district[5].as_u64()?;
                let orders = db.scan_prefix(txn, "orders", &[Value::U64(w), Value::U64(d)])?;
                for order in &orders {
                    let o_id = order[2].as_u64()?;
                    assert!(o_id < next_o_id, "order {o_id} >= next_o_id {next_o_id}");
                    let lines = db.scan_prefix(
                        txn,
                        "order_line",
                        &[Value::U64(w), Value::U64(d), Value::U64(o_id)],
                    )?;
                    assert_eq!(lines.len() as u64, order[6].as_u64()?, "o_ol_cnt mismatch");
                }
            }
        }
        Ok(())
    })
    .unwrap();

    // History heap received payment rows.
    assert!(db.count_approx("history").unwrap() > 0);

    // Structural integrity after the whole mixed run.
    db.check_consistency().unwrap();
}

#[test]
fn intentional_rollbacks_leave_no_trace() {
    let scale = TpccScale::tiny();
    let db = build(&scale);
    let orders_before = db.count_approx("orders").unwrap();
    // 100% poison: every NewOrder rolls back
    let cfg = DriverConfig {
        threads: 2,
        txns_per_thread: 30,
        rollback_pct: 100,
        ..DriverConfig::default()
    };
    let stats = run_mixed(&db, &scale, &cfg).unwrap();
    assert!(stats.intentional_rollbacks > 0);
    assert_eq!(
        stats.new_orders as usize + orders_before,
        db.count_approx("orders").unwrap()
    );
    // district next_o_id may have advanced and rolled back; verify ordering
    db.with_txn(|txn| {
        let district = db
            .get(txn, "district", &[Value::U64(1), Value::U64(1)])?
            .unwrap();
        let next = district[5].as_u64()?;
        let orders = db.scan_prefix(txn, "orders", &[Value::U64(1), Value::U64(1)])?;
        for o in orders {
            assert!(o[2].as_u64()? < next);
        }
        Ok(())
    })
    .unwrap();
}

#[test]
fn stock_level_matches_asof_at_quiesced_time() {
    let scale = TpccScale::tiny();
    let db = build(&scale);
    db.clock().advance_secs(60);
    db.checkpoint().unwrap();

    // quiesced: live result now
    let live = db.with_txn(|txn| stock_level(&db, txn, 1, 1, 15)).unwrap();
    let t = db.clock().now();
    db.clock().advance_secs(60);

    // churn afterwards
    let cfg = DriverConfig {
        threads: 2,
        txns_per_thread: 50,
        ..DriverConfig::default()
    };
    run_mixed(&db, &scale, &cfg).unwrap();

    // as-of the quiesced time: must match the live result taken then
    let snap = db.create_snapshot_asof("sl", t).unwrap();
    let asof = stock_level_asof(&snap, 1, 1, 15).unwrap();
    assert_eq!(
        asof, live,
        "as-of StockLevel must reproduce the historical result"
    );
    snap.wait_undo_complete();
    db.drop_snapshot("sl").unwrap();
}

#[test]
fn workload_survives_crash_recovery() {
    let scale = TpccScale::tiny();
    let db = build(&scale);
    let cfg = DriverConfig {
        threads: 2,
        txns_per_thread: 40,
        ..DriverConfig::default()
    };
    let db_arc = db;
    run_mixed(&db_arc, &scale, &cfg).unwrap();
    let orders = db_arc.count_approx("orders").unwrap();

    let db = Arc::try_unwrap(db_arc).map_err(|_| ()).expect("sole owner");
    let artifacts = db.simulate_crash();
    let db = Database::recover(artifacts).unwrap();
    assert_eq!(
        db.count_approx("orders").unwrap(),
        orders,
        "committed orders survive"
    );

    // and the workload keeps running
    let db = Arc::new(db);
    let stats = run_mixed(
        &db,
        &scale,
        &DriverConfig {
            threads: 2,
            txns_per_thread: 10,
            ..cfg
        },
    )
    .unwrap();
    assert_eq!(stats.committed(), 20);
}
