//! A large point-in-time scan running beside live traffic — without
//! trashing the live cache.
//!
//! The classic failure mode of "just run analytics on a snapshot": the
//! as-of scan is colder than anything else in the system, and §5.3 step (b)
//! reads every one of its pages through the shared buffer pool. A table
//! larger than the pool would evict the entire live working set, and the
//! OLTP side would spend the next minutes faulting it back in.
//!
//! Bulk as-of preparation therefore runs inside a **pin-limited scan
//! partition** (`DbConfig::asof_scan_budget` / ROADMAP item (h)): the scan
//! reuses its own bounded ring of frames, the live working set stays
//! resident, and the prepared pages land in the snapshot's side file as
//! immutable `Arc`-shared images — so re-reading them afterwards copies
//! nothing at all.
//!
//! ```text
//! cargo run --release --example concurrent_pit_scan
//! ```

use rewind::{Column, DataType, Database, DbConfig, Result, Schema, Value};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;

const POOL_PAGES: usize = 256;
const HOT_ROWS: u64 = 6_000; // ~75 leaves: the OLTP working set
const BIG_ROWS: u64 = 40_000; // ~500 leaves: twice the pool
const SCAN_BUDGET: usize = 16; // frames the analytics scan may occupy

fn schema() -> Schema {
    Schema::new(
        vec![
            Column::new("id", DataType::U64),
            Column::new("v", DataType::Str),
        ],
        &["id"],
    )
    .unwrap()
}

fn fill(db: &Database, table: &str, rows: u64, tag: &str) -> Result<()> {
    let pad = "x".repeat(64);
    for chunk in (0..rows).collect::<Vec<_>>().chunks(500) {
        db.with_txn(|txn| {
            for &i in chunk {
                db.insert(
                    txn,
                    table,
                    &[Value::U64(i), Value::Str(format!("{tag}{i}-{pad}"))],
                )?;
            }
            Ok(())
        })?;
    }
    Ok(())
}

fn main() -> Result<()> {
    let db = Arc::new(Database::create(DbConfig {
        buffer_pages: POOL_PAGES,
        asof_scan_budget: SCAN_BUDGET,
        checkpoint_interval_bytes: 0,
        ..DbConfig::default()
    })?);
    db.with_txn(|txn| {
        db.create_table(txn, "accounts", schema())?;
        db.create_table(txn, "events", schema())?;
        Ok(())
    })?;
    println!("loading {HOT_ROWS} hot rows + {BIG_ROWS} history rows…");
    fill(&db, "accounts", HOT_ROWS, "acct")?;
    fill(&db, "events", BIG_ROWS, "ev")?;
    db.clock().advance_secs(60);
    db.checkpoint()?;
    let t0 = db.clock().now();
    db.clock().advance_secs(60);

    // Live traffic: point reads over the accounts working set.
    let hot_pass = |label: &str| -> Result<f64> {
        let s0 = db.pool_stats();
        db.with_txn(|txn| {
            for i in (0..HOT_ROWS).step_by(2) {
                db.get(txn, "accounts", &[Value::U64(i)])?
                    .expect("account row");
            }
            Ok(())
        })?;
        let d = db.pool_stats().delta(s0);
        let rate = d.hits as f64 / (d.hits + d.misses).max(1) as f64;
        println!(
            "  {label:<34} hit rate {:6.2}%  ({} misses)",
            rate * 100.0,
            d.misses
        );
        Ok(rate)
    };

    println!("\nwarming the live working set:");
    hot_pass("initial fill")?;
    let before = hot_pass("steady state")?;

    // The analytics side mounts a snapshot as of t0 and scans ALL of
    // `events` — twice the size of the buffer pool — while the OLTP side
    // keeps reading.
    println!(
        "\nmounting snapshot as of t0; scanning {BIG_ROWS} history rows \
         (≥2x pool) with 4 prepare workers, budget {SCAN_BUDGET} frames…"
    );
    let snap = db.create_snapshot_asof("analytics", t0)?;
    snap.wait_undo_complete();
    let events = snap.table("events")?;

    let stop = Arc::new(AtomicBool::new(false));
    let live_reads = Arc::new(AtomicU64::new(0));
    let (prepared, scanned) = std::thread::scope(|s| -> Result<(u64, usize)> {
        // concurrent OLTP traffic for the duration of the scan
        let live = {
            let db = db.clone();
            let stop = stop.clone();
            let live_reads = live_reads.clone();
            s.spawn(move || -> Result<()> {
                let mut i = 0u64;
                while !stop.load(Ordering::Relaxed) {
                    i = (i + 7) % HOT_ROWS;
                    db.with_txn(|txn| {
                        db.get(txn, "accounts", &[Value::U64(i)])?.expect("row");
                        Ok(())
                    })?;
                    live_reads.fetch_add(1, Ordering::Relaxed);
                }
                Ok(())
            })
        };
        let prepared = snap.prefetch_table(&events, 4)?;
        let rows = snap.scan_all(&events)?;
        stop.store(true, Ordering::Relaxed);
        live.join().expect("live reader panicked")?;
        Ok((prepared, rows.len()))
    })?;
    println!(
        "  scan complete: {prepared} pages prepared, {scanned} rows as of t0, \
         {} live reads ran beside it",
        live_reads.load(Ordering::Relaxed)
    );
    println!(
        "  side file: {} pages ({} KiB of immutable shared images)",
        snap.side_pages(),
        snap.raw().side_page_ids().len() * 8
    );

    println!("\nlive working set after the scan:");
    let after = hot_pass("post-scan")?;

    // Warm analytics re-read: every page is an Arc-shared side-file hit.
    let h0 = snap.stats().side_hits;
    let rows = snap.scan_all(&events)?;
    println!(
        "\nwarm re-scan of the snapshot: {} rows, {} side-file hits, 0 page copies",
        rows.len(),
        snap.stats().side_hits - h0
    );

    println!(
        "\nlive hit rate {:.2}% -> {:.2}% across a {}-page as-of scan \
         (pool {} frames, scan budget {} frames)",
        before * 100.0,
        after * 100.0,
        prepared,
        POOL_PAGES,
        SCAN_BUDGET
    );
    if after < before - 0.05 {
        println!("WARN: live hit rate dropped more than 5 points");
    } else {
        println!("OK: the live cache survived the bulk point-in-time scan");
    }
    db.drop_snapshot("analytics")?;
    Ok(())
}
