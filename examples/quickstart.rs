//! Quickstart: create a database, run transactions, travel back in time.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use rewind::{Column, DataType, Database, DbConfig, Result, Schema, Value};

fn main() -> Result<()> {
    // An in-memory database with default settings. The engine keeps its own
    // simulated wall clock — benchmarks and tests drive it explicitly.
    let db = Database::create(DbConfig::default())?;

    // DDL + DML are ordinary ACID transactions.
    db.with_txn(|txn| {
        db.create_table(
            txn,
            "accounts",
            Schema::new(
                vec![
                    Column::new("id", DataType::U64),
                    Column::new("owner", DataType::Str),
                    Column::new("balance", DataType::I64),
                ],
                &["id"],
            )?,
        )?;
        for (id, owner, balance) in [(1u64, "ada", 100i64), (2, "grace", 250), (3, "edsger", 75)] {
            db.insert(
                txn,
                "accounts",
                &[Value::U64(id), Value::str(owner), Value::I64(balance)],
            )?;
        }
        Ok(())
    })?;

    // Mark a point in time we'll want to look back at.
    db.clock().advance_secs(3600);
    db.checkpoint()?;
    let before_changes = db.clock().now();
    println!("bookmarked t = {before_changes}");
    db.clock().advance_secs(3600);

    // Changes after the bookmark: a transfer and a deletion.
    db.with_txn(|txn| {
        let a = db
            .get_for_update(txn, "accounts", &[Value::U64(1)])?
            .unwrap();
        let b = db
            .get_for_update(txn, "accounts", &[Value::U64(2)])?
            .unwrap();
        db.update(
            txn,
            "accounts",
            &[Value::U64(1), a[1].clone(), Value::I64(a[2].as_i64()? - 50)],
        )?;
        db.update(
            txn,
            "accounts",
            &[Value::U64(2), b[1].clone(), Value::I64(b[2].as_i64()? + 50)],
        )?;
        db.delete(txn, "accounts", &[Value::U64(3)])?;
        Ok(())
    })?;

    println!("\ncurrent state:");
    for row in db.with_txn(|txn| db.scan_all(txn, "accounts"))? {
        println!("  {row:?}");
    }

    // Rewind: a read-only database as of the bookmark. Only the pages the
    // query touches are unwound (paper §5.3).
    let snap = db.create_snapshot_asof("an_hour_ago", before_changes)?;
    let accounts = snap.table("accounts")?;
    println!("\nas of {before_changes}:");
    for row in snap.scan_all(&accounts)? {
        println!("  {row:?}");
    }
    let stats = snap.stats();
    println!(
        "\nsnapshot work: {} pages prepared, {} log records undone, {} side-file pages",
        stats.pages_prepared,
        stats.records_undone,
        snap.side_pages()
    );
    db.drop_snapshot("an_hour_ago")?;
    Ok(())
}
