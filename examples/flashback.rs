//! Selective undo of an erroneous batch job — the flashback generalization
//! of the paper's §1 recovery story. Where `error_recovery.rs` restores a
//! dropped table wholesale, this example reverts exactly one committed
//! transaction's rows while every later write survives.
//!
//! ```text
//! cargo run --release --example flashback
//! ```

use rewind::repair::{flashback, ConflictPolicy, RepairConfig, RepairTarget};
use rewind::tpcc::{self, bad_credit_batch, create_schema, load_initial, TpccScale};
use rewind::{Database, DbConfig, Result, Value};
use std::collections::BTreeSet;
use std::sync::Arc;
use std::time::Duration;

fn main() -> Result<()> {
    let db = Arc::new(Database::create(DbConfig::default())?);
    db.set_undo_interval(Duration::from_secs(24 * 3600))?;
    let scale = TpccScale::default();
    create_schema(&db)?;
    load_initial(&db, &scale)?;
    db.clock().advance_mins(10);
    db.checkpoint()?;

    // ---- the application error --------------------------------------------
    // A promo script with a missing WHERE clause wipes every customer
    // balance in warehouse 1 — and commits.
    let bad_txn = {
        let txn = db.begin();
        let damaged = bad_credit_batch(&db, &txn, 1)?;
        let id = txn.id();
        db.commit(txn)?;
        println!("!!! bad batch committed as {id:?}, damaged {damaged} customers");
        id
    };
    db.clock().advance_mins(5);

    // Business continues after the mistake; none of this may be lost.
    db.with_txn(|txn| tpcc::payment(&db, txn, 2, 1, tpcc::txns::CustomerSelector::ById(1), 42.0))?;
    db.clock().advance_mins(5);

    // ---- the flashback ----------------------------------------------------
    // No guessing at timestamps, no restore: name the transaction, revert
    // its rows. The witness snapshot mounts just before its first log
    // record; page preparation fans out across 4 workers.
    let report = flashback(
        &db,
        &RepairTarget::Txns(BTreeSet::from([bad_txn])),
        &RepairConfig {
            policy: ConflictPolicy::Skip,
            prefetch_workers: 4,
        },
    )?;
    println!(
        "flashback: {} rows reverted, {} already clean, {} conflicts skipped, \
         witness split at {}, repair committed as {:?}",
        report.applied,
        report.noops,
        report.skipped_conflicts.len(),
        report.witness_split,
        report.repair_txn,
    );

    // Damage gone, later work intact.
    db.with_txn(|txn| {
        let c = db
            .get(
                txn,
                "customer",
                &[Value::U64(1), Value::U64(1), Value::U64(1)],
            )?
            .unwrap();
        assert_ne!(c[9], Value::str("PROMO-APPLIED"));
        let w2 = db.get(txn, "warehouse", &[Value::U64(2)])?.unwrap();
        assert!(w2[3].as_f64()? >= 42.0, "the later payment survived");
        Ok(())
    })?;
    println!("damage reverted; post-error work preserved. no backup, no lost writes.");
    Ok(())
}
