//! Point-in-time analytics (§6.2's experiment as an application): run the
//! TPC-C workload, then ask the same StockLevel question *as of* several
//! moments in the past and watch the cost grow with the rewind distance —
//! while staying proportional to the data touched, never to database size.
//!
//! ```text
//! cargo run --release --example point_in_time_query
//! ```

use rewind::tpcc::{
    create_schema, load_initial, run_mixed, stock_level_asof, DriverConfig, TpccScale,
};
use rewind::{Database, DbConfig, Result};
use std::sync::Arc;

fn main() -> Result<()> {
    let db = Arc::new(Database::create(DbConfig {
        fpi_interval: 16, // §6.1: full page image every 16th modification
        ..DbConfig::default()
    })?);
    let scale = TpccScale::default();
    create_schema(&db)?;
    load_initial(&db, &scale)?;

    // Generate six simulated minutes of history, checkpointing per minute.
    println!("running workload…");
    let mut marks = Vec::new();
    for minute in 0..6 {
        let cfg = DriverConfig {
            threads: 2,
            txns_per_thread: 300,
            us_per_txn: 100_000, // 600 txns ≈ 1 simulated minute
            seed: minute as u64,
            rollback_pct: 1,
        };
        run_mixed(&db, &scale, &cfg)?;
        db.checkpoint()?;
        marks.push(db.clock().now());
    }
    let now = db.clock().now();
    println!("history spans {} simulated seconds\n", now.as_secs_f64());

    println!(
        "{:>9} | {:>10} | {:>9} | {:>14} | {:>13} | {:>9}",
        "min back", "low stock", "real ms", "pages prepared", "records undone", "undo IOs"
    );
    println!("{}", "-".repeat(80));
    for (i, &t) in marks.iter().enumerate() {
        let mins_back = (now.micros_since(t)) / 60_000_000;
        let name = format!("pitq_{i}");
        let log0 = db.log_io();
        let snap = db.create_snapshot_asof(&name, t)?;
        #[allow(clippy::disallowed_methods)] // demo prints real elapsed time
        let t0 = std::time::Instant::now();
        let low = stock_level_asof(&snap, 1, 1, 15)?;
        let ms = t0.elapsed().as_secs_f64() * 1e3;
        let stats = snap.stats();
        let undo_ios = db.log_io().delta(log0).log_read_ios;
        println!(
            "{:>9} | {:>10} | {:>9.2} | {:>14} | {:>13} | {:>9}",
            mins_back, low, ms, stats.pages_prepared, stats.records_undone, undo_ios
        );
        snap.wait_undo_complete();
        db.drop_snapshot(&name)?;
    }

    println!(
        "\nNote: further back ⇒ more modifications to undo on each touched page\n\
         (the paper's Fig. 11), but the page count stays tied to the query."
    );
    Ok(())
}
