//! Retention management and the backup interplay (§4.3 and §6.4).
//!
//! Shows `SET UNDO_INTERVAL`, log truncation, the clean error when a
//! requested time falls outside retention, the traditional restore baseline,
//! and the §6.4 picker that chooses between "rewind from now" and "restore
//! and roll forward".
//!
//! ```text
//! cargo run --release --example retention_and_backup
//! ```

use rewind::backup::{
    choose_access_path, restore_to_point_in_time, take_full_backup, PathChoice, PathEstimate,
};
use rewind::common::MediaModel;
use rewind::tpcc::{create_schema, load_initial, run_mixed, DriverConfig, TpccScale};
use rewind::wal::LogConfig;
use rewind::{Database, DbConfig, Error, Result, SimClock, Value};
use std::sync::Arc;
use std::time::Duration;

fn main() -> Result<()> {
    // archive_on_truncate keeps truncated log as "log backups" so old
    // backups remain restorable even past the undo interval
    let db = Arc::new(Database::create(DbConfig {
        log: LogConfig {
            archive_on_truncate: true,
            ..LogConfig::default()
        },
        ..DbConfig::default()
    })?);
    let scale = TpccScale::tiny();
    create_schema(&db)?;
    load_initial(&db, &scale)?;

    // ALTER DATABASE … SET UNDO_INTERVAL = 10 MINUTES (§4.3)
    db.set_undo_interval(Duration::from_secs(600))?;
    println!("undo interval: {:?}", db.undo_interval());

    // A full backup before the churn (the traditional safety net).
    let backup = take_full_backup(&db)?;
    println!(
        "full backup: {} MiB at {}",
        backup.bytes >> 20,
        backup.taken_at
    );

    // 30 simulated minutes of workload; retention keeps ~10.
    for _ in 0..30 {
        run_mixed(
            &db,
            &scale,
            &DriverConfig {
                threads: 2,
                txns_per_thread: 50,
                us_per_txn: 600_000,
                ..Default::default()
            },
        )?;
        db.checkpoint()?;
        db.enforce_retention();
    }
    let stats = db.stats()?;
    println!(
        "log: {} MiB written, {} MiB retained after truncation",
        stats.log_bytes >> 20,
        stats.log_retained_bytes >> 20
    );

    // Inside retention: as-of works.
    let recent = db.clock().now().minus_micros(5 * 60_000_000);
    let snap = db.create_snapshot_asof("recent", recent)?;
    let w = snap.table("warehouse")?;
    println!(
        "as-of {} works: warehouse count = {}",
        recent,
        snap.count(&w)?
    );
    snap.wait_undo_complete();
    db.drop_snapshot("recent")?;

    // Outside retention: a clean error — and the backup still covers it.
    let ancient = backup.taken_at.plus_micros(1_000_000);
    match db.create_snapshot_asof("ancient", ancient) {
        Err(Error::RetentionExceeded {
            requested,
            earliest,
        }) => {
            println!("as-of {requested} refused: earliest retained is {earliest}");
        }
        other => println!("unexpected: {:?}", other.map(|_| ())),
    }
    let (restored, report) = restore_to_point_in_time(
        &backup,
        db.log(),
        db.clock().now(),
        DbConfig::default(),
        SimClock::starting_at(db.clock().now()),
    )?;
    let rows = restored.with_txn(|txn| restored.get(txn, "warehouse", &[Value::U64(1)]))?;
    println!(
        "restore baseline still reaches it: warehouse 1 = {:?} ({} records replayed)",
        rows.map(|r| r[1].clone()),
        report.records_replayed
    );

    // §6.4: the generalized picker.
    println!("\n§6.4 picker (SAS media): pages touched → chosen path");
    let sas = MediaModel::sas_hdd();
    for pages in [10u64, 1_000, 100_000, 5_000_000] {
        let est = PathEstimate {
            pages_accessed: pages,
            undo_records_per_page: 200,
            log_miss_ratio: 0.8,
            db_bytes: 40 << 30,
            replay_bytes: 4 << 30,
            analysis_bytes: 64 << 20,
        };
        let pick = match choose_access_path(&est, &sas, &sas) {
            PathChoice::AsOfQuery => "as-of query (rewind)",
            PathChoice::RestoreRollForward => "restore + roll forward",
        };
        println!("  {pages:>9} pages → {pick}");
    }
    Ok(())
}
