//! The paper's headline scenario (§1): a table is dropped by mistake, and
//! the user recovers it *without* restoring a backup — by mounting an as-of
//! snapshot, confirming the table exists at that time, and reconciling it
//! into the live database with the equivalent of `INSERT … SELECT`.
//!
//! ```text
//! cargo run --release --example error_recovery
//! ```

use rewind::tpcc::{create_schema, load_initial, run_mixed, DriverConfig, TpccScale};
use rewind::{restore_table_from_snapshot, Database, DbConfig, Error, Result, Value};
use std::sync::Arc;
use std::time::Duration;

fn main() -> Result<()> {
    let db = Arc::new(Database::create(DbConfig::default())?);
    db.set_undo_interval(Duration::from_secs(24 * 3600))?; // §4.3

    // A real schema with real activity: the TPC-C workload.
    let scale = TpccScale::default();
    create_schema(&db)?;
    load_initial(&db, &scale)?;
    let customers = db.count_approx("customer")?;
    println!("loaded TPC-C: {customers} customers");

    // Business as usual for a while.
    run_mixed(
        &db,
        &scale,
        &DriverConfig {
            threads: 2,
            txns_per_thread: 100,
            ..Default::default()
        },
    )?;
    db.checkpoint()?;
    db.clock().advance_mins(10);

    // ---- the user error -------------------------------------------------
    let disaster_at = db.clock().now();
    db.with_txn(|txn| db.drop_table(txn, "customer"))?;
    println!("\n!!! DROP TABLE customer executed at {disaster_at}");
    assert!(matches!(db.table("customer"), Err(Error::TableNotFound(_))));

    // More work happens after the mistake — none of it must be lost.
    db.clock().advance_mins(5);
    db.with_txn(|txn| {
        let w = db
            .get_for_update(txn, "warehouse", &[Value::U64(1)])?
            .unwrap();
        db.update(
            txn,
            "warehouse",
            &[w[0].clone(), w[1].clone(), w[2].clone(), Value::F64(9.99)],
        )
    })?;

    // ---- the paper's recovery workflow ----------------------------------
    // 1. Determine the point in time and mount the snapshot. Guess a time;
    //    if the table isn't there, drop the snapshot and try earlier — each
    //    probe only unwinds *metadata* pages, independent of database size.
    let mut probe = db.clock().now();
    let snap = loop {
        probe = probe.minus_micros(4 * 60_000_000); // step back 4 minutes
        let name = format!("probe@{probe}");
        let snap = db.create_snapshot_asof(&name, probe)?;
        match snap.table("customer") {
            Ok(info) => {
                println!(
                    "snapshot {name}: table present with {} columns — using it",
                    info.schema.columns.len()
                );
                break snap;
            }
            Err(Error::TableNotFound(_)) => {
                println!("snapshot {name}: table absent, probing earlier…");
                db.drop_snapshot(snap.name())?;
            }
            Err(e) => return Err(e),
        }
    };

    // 2. Reconcile: recreate the table and INSERT…SELECT the rows across.
    let recovered = restore_table_from_snapshot(&db, &snap, "customer", "customer")?;
    println!("recovered {recovered} customer rows into the live database");
    let stats = snap.stats();
    println!(
        "cost was proportional to data touched: {} pages prepared, {} log records undone",
        stats.pages_prepared, stats.records_undone
    );
    db.drop_snapshot(snap.name())?;

    // Post-mistake work survived alongside the recovery.
    db.with_txn(|txn| {
        let w = db.get(txn, "warehouse", &[Value::U64(1)])?.unwrap();
        assert_eq!(w[3].as_f64()?, 9.99);
        assert_eq!(db.count_approx("customer")? as u64, recovered as u64);
        Ok(())
    })?;
    println!("post-mistake changes intact; no restore, no lost work.");
    Ok(())
}
