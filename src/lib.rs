//! # rewind
//!
//! A from-scratch Rust reproduction of *Transaction Log Based Application
//! Error Recovery and Point In-Time Query* (Talius, Dhamankar, Dumitrache,
//! Kodavalla — PVLDB 5(12), 2012).
//!
//! `rewind` is an embedded, ARIES-style transactional storage engine whose
//! transaction log can run *backwards*: within a configured retention
//! period, the database can be queried **as of any wall-clock time in the
//! past**. Prior page versions are produced lazily — only for the pages a
//! query actually touches — via page-oriented physical undo
//! (`PreparePageAsOf`), so recovering from a fat-fingered `DROP TABLE`
//! costs time proportional to the data recovered, not to database size.
//!
//! ```
//! use rewind::{Database, DbConfig, Schema, Column, DataType, Value};
//! use rewind::restore_table_from_snapshot;
//!
//! let db = Database::create(DbConfig::default()).unwrap();
//! db.with_txn(|txn| {
//!     db.create_table(txn, "t", Schema::new(
//!         vec![Column::new("id", DataType::U64), Column::new("v", DataType::Str)],
//!         &["id"])?)?;
//!     db.insert(txn, "t", &[Value::U64(1), Value::str("precious")])
//! }).unwrap();
//! db.clock().advance_secs(60);
//! db.checkpoint().unwrap();
//! let before = db.clock().now();
//! db.clock().advance_secs(60);
//!
//! // the user error
//! db.with_txn(|txn| db.drop_table(txn, "t")).unwrap();
//!
//! // rewind: snapshot the past, reconcile into the present
//! let snap = db.create_snapshot_asof("oops", before).unwrap();
//! let n = restore_table_from_snapshot(&db, &snap, "t", "t_recovered").unwrap();
//! assert_eq!(n, 1);
//! ```
//!
//! The workspace crates compose bottom-up: [`pagestore`] (slotted pages,
//! allocation maps, file managers, the snapshot side file), [`wal`] (the
//! extended ARIES log), [`buffer`], [`txn_crate`] (2PL + latches),
//! [`access`] (B-Trees, heaps, allocator, codecs), [`recovery`]
//! (checkpoints, restart, `PreparePageAsOf`), [`snapshot`] (as-of and
//! copy-on-write snapshots), `core` (the [`Database`] facade), [`backup`]
//! (the restore baseline) and [`tpcc`] (the paper's workload).

pub use rewind_core::*;

/// Log-driven application error recovery: flashback targeted transactions.
pub use rewind_repair as repair;

/// The paper's workload (TPC-C-like schema, transactions, driver).
pub use rewind_tpcc as tpcc;

/// Traditional backup/restore baseline and the §6.4 path picker.
pub use rewind_backup as backup;

/// Access methods: B-Trees, heaps, allocator, codecs.
pub use rewind_access as access;
/// The buffer pool.
pub use rewind_buffer as buffer;
/// Shared ids, errors, clock and media models.
pub use rewind_common as common;
/// Pages, allocation maps, file managers, the side file.
pub use rewind_pagestore as pagestore;
/// Checkpoints, restart recovery, `PreparePageAsOf`.
pub use rewind_recovery as recovery;
/// As-of and copy-on-write snapshots.
pub use rewind_snapshot as snapshot;
/// Transactions, locks and latches.
pub use rewind_txn as txn_crate;
/// The extended write-ahead log.
pub use rewind_wal as wal;
